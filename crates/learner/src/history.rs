//! The k-history passive learner: automaton states are identified by the last
//! `k` abstract letters of the access word.
//!
//! This is the learner the active loop uses by default. It produces exactly
//! the Fig. 2 style of model: one state per (bounded) observation history,
//! transitions labelled by the predicate of the observation that is consumed.
//! Its key property for the active loop is *stable state identity*: the state
//! reached after reading a prefix depends only on the letters of that prefix,
//! so when a counterexample `(v_t, v_{t+1})` is spliced onto a prefix ending
//! in a state that satisfies the violated assumption, the new edge is
//! attached to exactly the automaton state whose completeness condition was
//! violated — each refinement iteration makes monotone progress.

use crate::abstraction::{AbstractionUpdate, IncrementalAbstraction};
use crate::learner::LetterAutomaton;
use crate::{
    AbstractionConfig, AlphabetAbstraction, LearnError, LetterId, ModelLearner, WordStats,
};
use amle_automaton::Nfa;
use amle_expr::{VarId, VarSet};
use amle_system::{TraceSet, TraceStore};
use std::collections::{BTreeMap, BTreeSet};

/// Passive learner whose states are bounded observation histories.
///
/// `history_depth = 1` (the default) yields one state per abstract letter
/// plus a distinguished initial state; larger depths refine states by longer
/// histories, which can capture counter-like sequencing at the cost of more
/// states.
///
/// The store-backed path ([`ModelLearner::learn_from_store`]) is
/// **incremental**: the history quotient is a left fold over the sample
/// words, so when the alphabet is stable between iterations the learner
/// keeps its state map and transition set and folds in only the words of
/// newly added traces. The result is byte-identical to a from-scratch fold
/// (state ids depend only on first-encounter order, which appending
/// preserves); only the cost changes.
#[derive(Debug, Clone)]
pub struct HistoryLearner {
    /// Number of trailing letters that identify a state.
    pub history_depth: usize,
    /// Alphabet-abstraction configuration.
    pub abstraction: AbstractionConfig,
    /// Incremental state for the store-backed path.
    cache: Option<HistoryCache>,
    /// Accumulated word-pipeline statistics.
    stats: WordStats,
}

/// Equality is configuration equality; incremental caches and accumulated
/// statistics are ignored.
impl PartialEq for HistoryLearner {
    fn eq(&self, other: &Self) -> bool {
        self.history_depth == other.history_depth && self.abstraction == other.abstraction
    }
}

impl Eq for HistoryLearner {}

/// The incremental fold state of the store-backed path.
#[derive(Debug, Clone)]
struct HistoryCache {
    /// Depth the fold was built with; a config change invalidates it.
    depth: usize,
    inc: IncrementalAbstraction,
    /// Number of cached words already folded into the quotient.
    words_done: usize,
    state_ids: BTreeMap<Vec<LetterId>, usize>,
    transitions: BTreeSet<(usize, LetterId, usize)>,
}

impl HistoryCache {
    fn fresh(depth: usize, config: AbstractionConfig) -> Self {
        HistoryCache {
            depth,
            inc: IncrementalAbstraction::new(config),
            words_done: 0,
            state_ids: BTreeMap::from([(Vec::new(), 0)]),
            transitions: BTreeSet::new(),
        }
    }

    fn reset_fold(&mut self) {
        self.words_done = 0;
        self.state_ids = BTreeMap::from([(Vec::new(), 0)]);
        self.transitions = BTreeSet::new();
    }
}

impl Default for HistoryLearner {
    fn default() -> Self {
        HistoryLearner {
            history_depth: 1,
            abstraction: AbstractionConfig::default(),
            cache: None,
            stats: WordStats::default(),
        }
    }
}

/// Folds one sample word into the history quotient: states are the bounded
/// letter histories, assigned dense ids in first-encounter order.
fn fold_word(
    depth: usize,
    state_ids: &mut BTreeMap<Vec<LetterId>, usize>,
    transitions: &mut BTreeSet<(usize, LetterId, usize)>,
    word: &[LetterId],
) {
    let mut history: Vec<LetterId> = Vec::new();
    for letter in word {
        let from_len = state_ids.len();
        let from = *state_ids.entry(history.clone()).or_insert(from_len);
        history.push(*letter);
        if history.len() > depth {
            history.remove(0);
        }
        let to_len = state_ids.len();
        let to = *state_ids.entry(history.clone()).or_insert(to_len);
        transitions.insert((from, *letter, to));
    }
}

impl HistoryLearner {
    /// Creates a learner with the given history depth and default abstraction
    /// configuration.
    pub fn new(history_depth: usize) -> Self {
        HistoryLearner {
            history_depth,
            ..Default::default()
        }
    }

    pub(crate) fn learn_letter_automaton(&self, words: &[Vec<LetterId>]) -> LetterAutomaton {
        let depth = self.history_depth.max(1);
        // State identity: the (at most `depth`-long) suffix of the access
        // word. The empty suffix is the initial state.
        let mut state_ids: BTreeMap<Vec<LetterId>, usize> = BTreeMap::new();
        state_ids.insert(Vec::new(), 0);
        let mut transitions = BTreeSet::new();
        for word in words {
            fold_word(depth, &mut state_ids, &mut transitions, word);
        }
        LetterAutomaton {
            num_states: state_ids.len(),
            initial: 0,
            transitions,
        }
    }
}

impl ModelLearner for HistoryLearner {
    fn learn(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
    ) -> Result<Nfa, LearnError> {
        if traces.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let abstraction =
            AlphabetAbstraction::from_traces(vars, observables, traces, self.abstraction);
        let words: Vec<Vec<LetterId>> = traces
            .iter()
            .map(|t| {
                abstraction
                    .word_of(t.observations())
                    .expect("abstraction was built from these traces")
            })
            .collect();
        self.stats.words_encoded += words.len() as u64;
        let letter_automaton = self.learn_letter_automaton(&words);
        debug_assert!(
            words.iter().all(|w| letter_automaton.accepts_word(w)),
            "history quotient must accept every sample word"
        );
        Ok(letter_automaton.to_nfa(&abstraction))
    }

    fn learn_from_store(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> Result<Nfa, LearnError> {
        if store.is_empty() {
            return Err(LearnError::NoTraces);
        }
        let depth = self.history_depth.max(1);
        let config = self.abstraction;
        let reusable =
            matches!(&self.cache, Some(c) if c.depth == depth && c.inc.config() == config);
        if !reusable {
            self.cache = Some(HistoryCache::fresh(depth, config));
        }
        let cache = self.cache.as_mut().expect("cache just ensured");
        let update = cache.inc.update(vars, observables, store);
        if update == AbstractionUpdate::Rebuilt {
            cache.reset_fold();
        }
        let words = cache.inc.words();
        for word in &words[cache.words_done..] {
            fold_word(depth, &mut cache.state_ids, &mut cache.transitions, word);
        }
        self.stats.words_encoded += (words.len() - cache.words_done) as u64;
        self.stats.words_reused += cache.words_done as u64;
        cache.words_done = words.len();

        let letter_automaton = LetterAutomaton {
            num_states: cache.state_ids.len(),
            initial: 0,
            transitions: cache.transitions.clone(),
        };
        debug_assert!(
            words.iter().all(|w| letter_automaton.accepts_word(w)),
            "history quotient must accept every sample word"
        );
        Ok(letter_automaton.to_nfa(cache.inc.abstraction()))
    }

    fn name(&self) -> &'static str {
        "history"
    }

    fn word_stats(&self) -> WordStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Expr, Sort, Value};
    use amle_system::{Simulator, SystemBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cooler() -> amle_system::System {
        let mut b = SystemBuilder::new();
        b.name("cooler");
        let temp = b.input_in_range("inp_temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("s_on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn learned_model_accepts_all_training_traces() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(11);
        let traces = sim.random_traces(20, 20, &mut rng);
        let mut learner = HistoryLearner::default();
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn depth_one_model_is_bounded_by_letter_count_plus_one() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(3);
        let traces = sim.random_traces(30, 30, &mut rng);
        let mut learner = HistoryLearner::new(1);
        let observables = sys.all_vars();
        let nfa = learner.learn(sys.vars(), &observables, &traces).unwrap();
        // Letters for the cooler: (temp cell) x (on value) — at most 2*2 plus
        // the initial state, and the threshold mining may add a few cells.
        assert!(
            nfa.num_states() <= 10,
            "unexpectedly large model: {}",
            nfa.num_states()
        );
        for trace in traces.iter() {
            assert!(nfa.accepts_trace(trace));
        }
    }

    #[test]
    fn deeper_history_refines_the_model() {
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(5);
        let traces = sim.random_traces(15, 15, &mut rng);
        let observables = sys.all_vars();
        let shallow = HistoryLearner::new(1)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        let deep = HistoryLearner::new(2)
            .learn(sys.vars(), &observables, &traces)
            .unwrap()
            .num_states();
        assert!(shallow <= deep);
    }

    #[test]
    fn store_path_matches_flat_path_and_reuses_words() {
        use amle_system::TraceStore;
        let sys = cooler();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(21);
        let traces = sim.random_traces(12, 10, &mut rng);
        // Boolean observables only: the cell structure is pinned once both
        // values are seen, so growing the store must take the incremental
        // path (a numeric observable could re-mine thresholds and rebuild).
        let observables = vec![sys.vars().lookup("s_on").unwrap()];

        let mut store = TraceStore::from_trace_set(&traces);
        let mut incremental = HistoryLearner::default();
        let from_store = incremental
            .learn_from_store(sys.vars(), &observables, &store)
            .unwrap();
        let from_flat = HistoryLearner::default()
            .learn(sys.vars(), &observables, &traces)
            .unwrap();
        assert_eq!(from_store, from_flat, "store and flat models diverged");
        assert_eq!(incremental.word_stats().words_encoded, traces.len() as u64);

        // Growing the store with a splice of known observations keeps the
        // alphabet stable, so only the new trace's word is encoded.
        let first = store.traces().next().unwrap();
        let obs = store.materialize(first).observations()[2].clone();
        let prefix = store.prefix(first, 4);
        store.splice(prefix, &obs, &obs).unwrap();
        let before = incremental.word_stats();
        let grown = incremental
            .learn_from_store(sys.vars(), &observables, &store)
            .unwrap();
        let delta = incremental.word_stats().since(&before);
        assert_eq!(delta.words_encoded, 1);
        assert_eq!(delta.words_reused, traces.len() as u64);
        let fresh = HistoryLearner::default()
            .learn(sys.vars(), &observables, &store.to_trace_set())
            .unwrap();
        assert_eq!(grown, fresh, "incremental model diverged from rebuild");
    }

    #[test]
    fn empty_trace_set_is_an_error() {
        let sys = cooler();
        let mut learner = HistoryLearner::default();
        let observables = sys.all_vars();
        assert_eq!(
            learner.learn(sys.vars(), &observables, &TraceSet::new()),
            Err(LearnError::NoTraces)
        );
    }

    #[test]
    fn learner_name_and_depth_zero_behaves_like_depth_one() {
        assert_eq!(HistoryLearner::default().name(), "history");
        let words = vec![vec![LetterId(0), LetterId(1)]];
        let a0 = HistoryLearner::new(0).learn_letter_automaton(&words);
        let a1 = HistoryLearner::new(1).learn_letter_automaton(&words);
        assert_eq!(a0.num_states, a1.num_states);
    }
}
