//! # amle-learner
//!
//! The pluggable model-learning component of the active learning pipeline.
//!
//! The paper only requires that, given a set of execution traces `T`, the
//! learner returns an NFA that accepts (at least) every trace in `T`
//! (Section II-B). This crate provides four interchangeable learners behind
//! the [`ModelLearner`] trait. All of them share the same front end: concrete
//! observations are generalised into a finite alphabet of synthesised
//! predicates ([`AlphabetAbstraction`]), and the automaton learned over that
//! alphabet is translated back into a symbolic NFA whose edge guards are the
//! letters' predicates — producing models like Fig. 2 of the paper.
//!
//! * [`HistoryLearner`] — the default: states are bounded observation
//!   histories (depth 1 gives one state per abstract letter plus an initial
//!   state). Its stable state identity makes every refinement iteration of
//!   the active loop attach counterexample edges to exactly the state whose
//!   completeness condition failed.
//! * [`KTailsLearner`] — classic k-tails state merging on the prefix-tree
//!   acceptor ([`Pta`]): states with equal bounded futures are merged.
//! * [`SatDfaLearner`] — exact minimal-DFA identification using the CDCL
//!   solver from `amle-sat`, with negative evidence inferred from
//!   well-supported prefixes (an ablation point for the greedy mergers).
//! * [`LstarLearner`] — Angluin's L\* with a sample-backed teacher, included
//!   as the classic query-based active-learning baseline the paper's related
//!   work discusses.
//!
//! All learners guarantee the paper's contract: the returned NFA admits every
//! input trace (checked by unit and property tests, and re-checked at runtime
//! by the active-learning loop in `amle-core`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod abstraction;
mod history;
mod ktails;
mod learner;
mod lstar;
mod pta;
mod satdfa;

pub use abstraction::{
    AbstractionConfig, AbstractionUpdate, AlphabetAbstraction, IncrementalAbstraction, LetterId,
};
pub use history::HistoryLearner;
pub use ktails::KTailsLearner;
pub use learner::{LearnError, LearnerKind, ModelLearner, WordStats};
pub use lstar::{LstarLearner, ObservationTable};
pub use pta::Pta;
pub use satdfa::SatDfaLearner;

#[cfg(test)]
mod proptests;
