//! Alphabet abstraction: synthesising a finite predicate alphabet from
//! concrete trace data.
//!
//! The symbolic models of the paper (Fig. 2) label transitions with
//! predicates over the observables, such as `inp.temp > T_thresh && s' = On`.
//! To learn such models from concrete valuations, the learner first
//! generalises the observations into a finite set of *letters*, each
//! described by a conjunction of per-variable atomic predicates:
//!
//! * variables with few observed distinct values (booleans, enumerations,
//!   small counters) get equality predicates `x == c`;
//! * numeric variables with many observed values get interval predicates
//!   whose thresholds are mined from the data: a boundary is introduced
//!   wherever neighbouring observations (ordered by the numeric value) lead
//!   to different next values of the discrete variables — the 1-D
//!   decision-boundary rule that recovers the `T_thresh`-style guards of
//!   threshold controllers.
//!
//! The abstraction maps every observation to exactly one letter, so abstract
//! words are well defined and the learned automaton over letters can be
//! translated back into a symbolic NFA whose guards are the letters'
//! predicates.

use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
use amle_system::{ObsId, TraceSet, TraceStore};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifier of an abstract letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LetterId(pub(crate) usize);

impl LetterId {
    /// The dense index of the letter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Tuning knobs of the alphabet abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractionConfig {
    /// Variables with at most this many observed distinct values are
    /// abstracted by equality predicates; others by mined intervals.
    pub max_distinct_values: usize,
    /// Upper bound on the number of interval thresholds mined per numeric
    /// variable (the most frequently voted boundaries are kept).
    pub max_thresholds: usize,
}

impl Default for AbstractionConfig {
    fn default() -> Self {
        AbstractionConfig {
            max_distinct_values: 12,
            max_thresholds: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VarAbstraction {
    /// One cell per observed value; the predicate of cell `i` is `x == values[i]`.
    Exact { values: Vec<i64> },
    /// Cells are the intervals induced by the sorted thresholds:
    /// `(-∞, t0), [t0, t1), …, [t_last, ∞)`.
    Intervals { thresholds: Vec<i64> },
}

/// A finite predicate alphabet synthesised from trace data.
#[derive(Debug, Clone)]
pub struct AlphabetAbstraction {
    vars: VarSet,
    observables: Vec<VarId>,
    per_var: Vec<VarAbstraction>,
    letters: Vec<Vec<usize>>,
    /// The symbolic predicate of each letter, built once when the letter is
    /// registered. Predicates are hash-consed `Expr`s, so letters with equal
    /// guards — within one abstraction or across the rebuilds of successive
    /// iterations — share one interned node, and the repeated
    /// [`AlphabetAbstraction::predicate`] calls of NFA construction are
    /// clone-of-`Arc` cheap.
    predicates: Vec<Expr>,
    index: HashMap<Vec<usize>, LetterId>,
}

impl AlphabetAbstraction {
    /// Builds the abstraction from a trace set.
    ///
    /// Only valuations of the `observables` are considered. Every observation
    /// occurring in `traces` is guaranteed to map to a letter.
    pub fn from_traces(
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
        config: AbstractionConfig,
    ) -> Self {
        let observations: Vec<&Valuation> = traces
            .iter()
            .flat_map(|t| t.observations().iter())
            .collect();

        // 1. Observed value sets per observable.
        let mut distinct: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); observables.len()];
        for obs in &observations {
            for (i, id) in observables.iter().enumerate() {
                distinct[i].insert(obs.value(*id).to_i64());
            }
        }

        // 2. Decide per-variable abstraction. Threshold voting is a function
        //    of the *set* of observed steps (see [`mine_thresholds`]), so the
        //    steps are deduplicated up front — and only collected at all
        //    when some observable actually needs interval mining.
        let any_numeric = observables
            .iter()
            .enumerate()
            .any(|(i, id)| !is_discrete(vars.sort(*id), distinct[i].len(), config));
        let steps: BTreeSet<(&Valuation, &Valuation)> = if any_numeric {
            traces.iter().flat_map(|t| t.steps()).collect()
        } else {
            BTreeSet::new()
        };
        let per_var =
            per_var_abstractions(vars, observables, &distinct, steps.iter().copied(), config);

        let mut abstraction = AlphabetAbstraction {
            vars: vars.clone(),
            observables: observables.to_vec(),
            per_var,
            letters: Vec::new(),
            predicates: Vec::new(),
            index: HashMap::new(),
        };

        // 3. Register a letter for every observed cell combination.
        for obs in &observations {
            let cells = abstraction.cells_of(obs);
            abstraction.intern(cells);
        }
        abstraction
    }

    fn intern(&mut self, cells: Vec<usize>) -> LetterId {
        if let Some(id) = self.index.get(&cells) {
            return *id;
        }
        let id = LetterId(self.letters.len());
        let predicate = self.predicate_of_cells(&cells);
        self.letters.push(cells.clone());
        self.predicates.push(predicate);
        self.index.insert(cells, id);
        id
    }

    fn cell_of(&self, var_index: usize, raw: i64) -> Option<usize> {
        match &self.per_var[var_index] {
            VarAbstraction::Exact { values } => values.iter().position(|v| *v == raw),
            VarAbstraction::Intervals { thresholds } => {
                Some(thresholds.iter().filter(|t| raw >= **t).count())
            }
        }
    }

    fn cells_of(&self, obs: &Valuation) -> Vec<usize> {
        self.observables
            .iter()
            .enumerate()
            .map(|(i, id)| {
                self.cell_of(i, obs.value(*id).to_i64())
                    .unwrap_or(usize::MAX)
            })
            .collect()
    }

    /// The number of distinct letters observed when the abstraction was built.
    pub fn num_letters(&self) -> usize {
        self.letters.len()
    }

    /// The observable variables the abstraction ranges over.
    pub fn observables(&self) -> &[VarId] {
        &self.observables
    }

    /// Maps an observation to its letter, or `None` if the observation falls
    /// into a cell combination that never occurred when the abstraction was
    /// built (e.g. a counterexample with a brand-new discrete value).
    pub fn letter_of(&self, obs: &Valuation) -> Option<LetterId> {
        let cells = self.cells_of(obs);
        if cells.contains(&usize::MAX) {
            return None;
        }
        self.index.get(&cells).copied()
    }

    /// Converts a sequence of observations into an abstract word, or `None`
    /// if any observation has no letter.
    ///
    /// # Example
    ///
    /// ```
    /// use amle_expr::{Sort, Valuation, Value, VarSet};
    /// use amle_learner::{AbstractionConfig, AlphabetAbstraction};
    /// use amle_system::{Trace, TraceSet};
    ///
    /// let mut vars = VarSet::new();
    /// let on = vars.declare("on", Sort::Bool)?;
    /// let obs = |b: bool| {
    ///     let mut v = Valuation::zeroed(&vars);
    ///     v.set(on, Value::Bool(b));
    ///     v
    /// };
    /// let mut traces = TraceSet::new();
    /// traces.insert(Trace::new(vec![obs(false), obs(true), obs(false)]));
    ///
    /// let abs = AlphabetAbstraction::from_traces(
    ///     &vars,
    ///     &[on],
    ///     &traces,
    ///     AbstractionConfig::default(),
    /// );
    /// // Two letters (`!on` and `on`); the word mirrors the observations.
    /// let word = abs.word_of(traces.traces()[0].observations()).unwrap();
    /// assert_eq!(word.len(), 3);
    /// assert_eq!(word[0], word[2]);
    /// assert_ne!(word[0], word[1]);
    /// # Ok::<(), amle_expr::SortError>(())
    /// ```
    pub fn word_of(&self, observations: &[Valuation]) -> Option<Vec<LetterId>> {
        observations.iter().map(|o| self.letter_of(o)).collect()
    }

    /// The symbolic predicate characterising a letter: the conjunction of the
    /// per-variable atomic predicates of its cells. Synthesised once when
    /// the letter is registered (see the `predicates` field) and returned as
    /// a cheap clone of the interned expression.
    ///
    /// # Panics
    ///
    /// Panics if the letter id does not belong to this abstraction.
    pub fn predicate(&self, letter: LetterId) -> Expr {
        self.predicates[letter.0].clone()
    }

    fn predicate_of_cells(&self, cells: &[usize]) -> Expr {
        let mut conjuncts = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            conjuncts.push(self.cell_predicate(i, *cell));
        }
        Expr::and_all(conjuncts)
    }

    fn cell_predicate(&self, var_index: usize, cell: usize) -> Expr {
        let id = self.observables[var_index];
        let sort = self.vars.sort(id).clone();
        let var = Expr::var(id, sort.clone());
        match &self.per_var[var_index] {
            VarAbstraction::Exact { values } => {
                let raw = values[cell];
                match &sort {
                    Sort::Bool => {
                        if raw != 0 {
                            var
                        } else {
                            var.not()
                        }
                    }
                    _ => {
                        let c = Expr::constant(&sort, Value::from_i64(&sort, raw))
                            .expect("observed value fits its sort");
                        var.eq(&c)
                    }
                }
            }
            VarAbstraction::Intervals { thresholds } => {
                if thresholds.is_empty() {
                    return Expr::true_();
                }
                let constant = |t: i64| {
                    Expr::constant(&sort, Value::from_i64(&sort, t))
                        .expect("threshold is an observed value")
                };
                let lower = if cell > 0 {
                    Some(var.ge(&constant(thresholds[cell - 1])))
                } else {
                    None
                };
                let upper = if cell < thresholds.len() {
                    Some(var.lt(&constant(thresholds[cell])))
                } else {
                    None
                };
                match (lower, upper) {
                    (Some(l), Some(u)) => l.and(&u),
                    (Some(l), None) => l,
                    (None, Some(u)) => u,
                    (None, None) => Expr::true_(),
                }
            }
        }
    }

    /// All letters of the abstraction.
    pub fn letters(&self) -> impl Iterator<Item = LetterId> {
        (0..self.letters.len()).map(LetterId)
    }

    /// An abstraction with the given per-variable cell structure and no
    /// letters registered yet (the incremental builder registers them as it
    /// scans traces).
    fn with_per_var(vars: &VarSet, observables: &[VarId], per_var: Vec<VarAbstraction>) -> Self {
        AlphabetAbstraction {
            vars: vars.clone(),
            observables: observables.to_vec(),
            per_var,
            letters: Vec::new(),
            predicates: Vec::new(),
            index: HashMap::new(),
        }
    }
}

/// Outcome of an [`IncrementalAbstraction::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractionUpdate {
    /// The per-variable cell structure changed (new distinct values or
    /// different mined thresholds), so the alphabet, the letter memo and all
    /// cached words were rebuilt from scratch.
    Rebuilt,
    /// The cell structure is unchanged: only the words of the newly added
    /// traces were converted (letters memoised per interned observation id);
    /// all previously cached words were reused as-is.
    Incremental {
        /// Number of traces whose words were newly converted.
        new_traces: usize,
    },
}

/// Incrementally maintained alphabet abstraction over a growing
/// [`TraceStore`].
///
/// The active-learning loop rebuilds the abstraction every iteration; with a
/// flat trace set that costs a full pass over every observation of every
/// trace. This builder exploits the store's interning and append-only
/// structure instead:
///
/// * distinct-value sets are folded **per interned observation** (each
///   distinct valuation is examined once, ever);
/// * interval thresholds are mined from the store's deduplicated step set
///   (see [`TraceStore::steps_since`]), which is provably vote-equivalent to
///   the per-occurrence scan (see `mine_thresholds`);
/// * letter lookups are memoised **per observation id**, so shared trace
///   prefixes never re-classify an observation;
/// * abstract words are cached per trace: when the cell structure is stable
///   between updates, only words of newly inserted traces are converted.
///
/// The resulting [`AlphabetAbstraction`] and words are byte-identical to the
/// from-scratch [`AlphabetAbstraction::from_traces`] path on the materialised
/// trace set — letters are registered in exactly the same first-occurrence
/// order — which the differential tests pin down.
#[derive(Debug, Clone)]
pub struct IncrementalAbstraction {
    config: AbstractionConfig,
    state: Option<IncState>,
}

#[derive(Debug, Clone)]
struct IncState {
    store_id: u64,
    vars: VarSet,
    observables: Vec<VarId>,
    /// Interned observations already folded into `distinct`.
    obs_seen: usize,
    /// Store segments (1 + segment count) already folded into `steps`.
    seg_watermark: usize,
    /// Traces whose words are cached.
    traces_seen: usize,
    distinct: Vec<BTreeSet<i64>>,
    steps: BTreeSet<(ObsId, ObsId)>,
    abstraction: AlphabetAbstraction,
    built: bool,
    /// Letter of each interned observation, computed at most once per
    /// alphabet rebuild.
    letter_memo: Vec<Option<LetterId>>,
    words: Vec<Vec<LetterId>>,
}

impl IncState {
    fn fresh(vars: &VarSet, observables: &[VarId], store_id: u64) -> Self {
        IncState {
            store_id,
            vars: vars.clone(),
            observables: observables.to_vec(),
            obs_seen: 0,
            seg_watermark: 0,
            traces_seen: 0,
            distinct: vec![BTreeSet::new(); observables.len()],
            steps: BTreeSet::new(),
            abstraction: AlphabetAbstraction::with_per_var(vars, observables, Vec::new()),
            built: false,
            letter_memo: Vec::new(),
            words: Vec::new(),
        }
    }
}

impl IncrementalAbstraction {
    /// Creates a builder with the given configuration.
    pub fn new(config: AbstractionConfig) -> Self {
        IncrementalAbstraction {
            config,
            state: None,
        }
    }

    /// The configuration the builder was created with.
    pub fn config(&self) -> AbstractionConfig {
        self.config
    }

    /// Brings the abstraction up to date with `store`.
    ///
    /// When the call refers to the same store as the previous update (same
    /// [`TraceStore::store_id`], monotonically grown) over the same
    /// variables, only the new observations, steps and traces are processed;
    /// otherwise everything is rebuilt. The returned [`AbstractionUpdate`]
    /// says which of the two happened.
    pub fn update(
        &mut self,
        vars: &VarSet,
        observables: &[VarId],
        store: &TraceStore,
    ) -> AbstractionUpdate {
        let reusable = matches!(
            &self.state,
            Some(s) if s.store_id == store.store_id()
                && s.obs_seen <= store.num_observations()
                && s.traces_seen <= store.len()
                && s.vars == *vars
                && s.observables == observables
        );
        if !reusable {
            self.state = None;
        }
        let mut s = self
            .state
            .take()
            .unwrap_or_else(|| IncState::fresh(vars, observables, store.store_id()));

        // 1. Fold new interned observations into the distinct-value sets.
        for (_, valuation) in store.observations_since(s.obs_seen) {
            for (i, id) in observables.iter().enumerate() {
                s.distinct[i].insert(valuation.value(*id).to_i64());
            }
        }
        s.obs_seen = store.num_observations();

        // 2. Fold new segments into the deduplicated step set — only needed
        //    once some observable requires interval mining. While every
        //    observable is discrete the watermark is deliberately *not*
        //    advanced, so a later discrete→numeric flip (a variable crossing
        //    `max_distinct_values`) folds the whole backlog of segments,
        //    which the append-only store still holds.
        let any_numeric = observables
            .iter()
            .enumerate()
            .any(|(i, id)| !is_discrete(vars.sort(*id), s.distinct[i].len(), self.config));
        if any_numeric {
            s.steps.extend(store.steps_since(s.seg_watermark));
            s.seg_watermark = 1 + store.num_segments();
        }

        // 3. Recompute the per-variable cell structure and decide whether the
        //    existing alphabet is still valid.
        let per_var = per_var_abstractions(
            vars,
            observables,
            &s.distinct,
            s.steps
                .iter()
                .map(|(a, b)| (store.valuation(*a), store.valuation(*b))),
            self.config,
        );
        let incremental = s.built && per_var == s.abstraction.per_var;
        if !incremental {
            s.abstraction = AlphabetAbstraction::with_per_var(vars, observables, per_var);
            s.built = true;
            s.letter_memo.clear();
            s.words.clear();
            s.traces_seen = 0;
        }
        s.letter_memo.resize(store.num_observations(), None);

        // 4. Convert the words of (new) traces, registering letters in
        //    first-occurrence order and memoising them per observation id.
        let start = s.traces_seen;
        let mut buf = Vec::new();
        for trace in store.traces().skip(start) {
            store.obs_ids_into(trace, &mut buf);
            let word = buf
                .iter()
                .map(|obs| match s.letter_memo[obs.index()] {
                    Some(letter) => letter,
                    None => {
                        let cells = s.abstraction.cells_of(store.valuation(*obs));
                        let letter = s.abstraction.intern(cells);
                        s.letter_memo[obs.index()] = Some(letter);
                        letter
                    }
                })
                .collect();
            s.words.push(word);
        }
        let new_traces = store.len() - start;
        s.traces_seen = store.len();
        self.state = Some(s);
        if incremental {
            AbstractionUpdate::Incremental { new_traces }
        } else {
            AbstractionUpdate::Rebuilt
        }
    }

    /// The current abstraction.
    ///
    /// # Panics
    ///
    /// Panics if [`update`](Self::update) has never been called.
    pub fn abstraction(&self) -> &AlphabetAbstraction {
        &self
            .state
            .as_ref()
            .expect("IncrementalAbstraction::update must run before abstraction()")
            .abstraction
    }

    /// The cached abstract words, one per stored trace in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if [`update`](Self::update) has never been called.
    pub fn words(&self) -> &[Vec<LetterId>] {
        &self
            .state
            .as_ref()
            .expect("IncrementalAbstraction::update must run before words()")
            .words
    }
}

/// The discrete-vs-numeric rule: variables whose sort is boolean or an
/// enumeration, or with few observed distinct values, get equality cells;
/// everything else gets mined interval cells.
fn is_discrete(sort: &Sort, distinct_values: usize, config: AbstractionConfig) -> bool {
    sort.is_bool() || sort.is_enum() || distinct_values <= config.max_distinct_values
}

/// Decides the per-variable abstractions from the distinct-value sets and the
/// (deduplicated) step set, the shared core of [`AlphabetAbstraction::from_traces`]
/// and the incremental builder. Callers may pass an empty `steps` iterator
/// when every observable is discrete (the step set is only consumed by
/// interval mining).
fn per_var_abstractions<'a>(
    vars: &VarSet,
    observables: &[VarId],
    distinct: &[BTreeSet<i64>],
    steps: impl Iterator<Item = (&'a Valuation, &'a Valuation)> + Clone,
    config: AbstractionConfig,
) -> Vec<VarAbstraction> {
    let discrete: Vec<bool> = distinct
        .iter()
        .enumerate()
        .map(|(i, set)| is_discrete(vars.sort(observables[i]), set.len(), config))
        .collect();

    let mut per_var = Vec::with_capacity(observables.len());
    for (i, id) in observables.iter().enumerate() {
        if discrete[i] {
            per_var.push(VarAbstraction::Exact {
                values: distinct[i].iter().copied().collect(),
            });
        } else {
            let thresholds = mine_thresholds(
                steps.clone(),
                observables,
                &discrete,
                *id,
                config.max_thresholds,
            );
            per_var.push(VarAbstraction::Intervals { thresholds });
        }
    }
    per_var
}

/// Mines interval thresholds for a numeric variable: a boundary is proposed
/// between two observations whenever their successor observations differ on
/// some discrete observable, and the most frequently proposed boundaries are
/// kept.
///
/// The vote counts are a function of the *set* of `(value, successor class)`
/// samples: duplicated samples sort adjacently, and a window between two
/// identical samples never votes, so exactly one vote is cast per boundary
/// between adjacent distinct samples regardless of multiplicity. The caller
/// may therefore pass the steps deduplicated (as the incremental pipeline
/// does) without changing the mined thresholds.
fn mine_thresholds<'a>(
    steps: impl Iterator<Item = (&'a Valuation, &'a Valuation)>,
    observables: &[VarId],
    discrete: &[bool],
    var: VarId,
    max_thresholds: usize,
) -> Vec<i64> {
    // Collect (value of `var` at time t, class = discrete observables at t+1).
    let samples: BTreeSet<(i64, Vec<i64>)> = steps
        .map(|(current, next)| {
            let class: Vec<i64> = observables
                .iter()
                .enumerate()
                .filter(|(i, _)| discrete[*i])
                .map(|(_, id)| next.value(*id).to_i64())
                .collect();
            (current.value(var).to_i64(), class)
        })
        .collect();

    // Vote for boundaries between adjacent samples with different classes.
    let samples: Vec<(i64, Vec<i64>)> = samples.into_iter().collect();
    let mut votes: BTreeMap<i64, usize> = BTreeMap::new();
    for pair in samples.windows(2) {
        let (a, ca) = &pair[0];
        let (b, cb) = &pair[1];
        if a != b && ca != cb {
            *votes.entry(*b).or_insert(0) += 1;
        }
    }
    let mut boundaries: Vec<(usize, i64)> = votes.into_iter().map(|(t, c)| (c, t)).collect();
    boundaries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut thresholds: Vec<i64> = boundaries
        .into_iter()
        .take(max_thresholds)
        .map(|(_, t)| t)
        .collect();
    thresholds.sort_unstable();
    thresholds.dedup();
    thresholds
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Sort;
    use amle_system::{Trace, TraceSet};

    /// Builds traces of a thermostat: `temp` is a noisy numeric input, `on`
    /// follows `temp > 75` with a one-step delay.
    fn thermostat_traces() -> (VarSet, VarId, VarId, TraceSet) {
        let mut vars = VarSet::new();
        let temp = vars.declare("temp", Sort::int(8)).unwrap();
        let on = vars.declare("on", Sort::Bool).unwrap();
        let mut set = TraceSet::new();
        let temp_seqs: Vec<Vec<i64>> = vec![
            vec![10, 30, 80, 90, 95, 60, 40, 85, 76, 75, 74, 100],
            vec![70, 71, 72, 77, 79, 81, 20, 25, 90, 12, 99, 50],
            vec![5, 95, 7, 93, 11, 89, 13, 87, 17, 83, 19, 81],
        ];
        for seq in temp_seqs {
            let mut obs = Vec::new();
            let mut prev_on = false;
            for t in seq {
                let mut v = Valuation::zeroed(&vars);
                v.set(temp, Value::Int(t));
                v.set(on, Value::Bool(prev_on));
                obs.push(v);
                prev_on = t > 75;
            }
            set.insert(Trace::new(obs));
        }
        (vars, temp, on, set)
    }

    #[test]
    fn discrete_variables_get_equality_cells() {
        let (vars, _, on, traces) = thermostat_traces();
        let abs =
            AlphabetAbstraction::from_traces(&vars, &[on], &traces, AbstractionConfig::default());
        assert_eq!(abs.num_letters(), 2);
        let preds: Vec<String> = abs
            .letters()
            .map(|l| abs.predicate(l).to_string())
            .collect();
        assert!(preds.iter().any(|p| p.contains('!')));
    }

    #[test]
    fn numeric_variable_gets_threshold_near_75() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig {
                max_distinct_values: 4,
                max_thresholds: 3,
            },
        );
        // The mined thresholds must include a boundary separating <=75 from >75.
        let VarAbstraction::Intervals { thresholds } = &abs.per_var[0] else {
            panic!("temp should be abstracted by intervals");
        };
        assert!(
            thresholds.iter().any(|t| (*t > 75) && (*t <= 81)),
            "expected a boundary just above 75, got {thresholds:?}"
        );
    }

    #[test]
    fn every_observation_has_a_letter_and_predicate_holds() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig {
                max_distinct_values: 4,
                max_thresholds: 4,
            },
        );
        for trace in traces.iter() {
            for obs in trace.observations() {
                let letter = abs.letter_of(obs).expect("observed valuation has a letter");
                assert!(abs.predicate(letter).eval_bool(obs));
            }
        }
    }

    #[test]
    fn letters_are_mutually_exclusive_on_observed_data() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig::default(),
        );
        for trace in traces.iter() {
            for obs in trace.observations() {
                let holding: Vec<LetterId> = abs
                    .letters()
                    .filter(|l| abs.predicate(*l).eval_bool(obs))
                    .collect();
                assert_eq!(holding.len(), 1, "exactly one letter predicate must hold");
                assert_eq!(holding[0], abs.letter_of(obs).unwrap());
            }
        }
    }

    #[test]
    fn word_conversion() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig::default(),
        );
        let trace = &traces.traces()[0];
        let word = abs.word_of(trace.observations()).unwrap();
        assert_eq!(word.len(), trace.len());

        // A made-up observation with an unseen `on/temp` combination may
        // produce no letter.
        let mut unseen = Valuation::zeroed(&vars);
        unseen.set(temp, Value::Int(200));
        unseen.set(on, Value::Bool(true));
        let _ = abs.letter_of(&unseen); // must not panic either way
    }

    #[test]
    fn unseen_discrete_value_has_no_letter() {
        let mut vars = VarSet::new();
        let mode = vars
            .declare("mode", Sort::enumeration("Mode", ["A", "B", "C"]))
            .unwrap();
        let mut set = TraceSet::new();
        let mut v0 = Valuation::zeroed(&vars);
        v0.set(mode, Value::Enum(0));
        let mut v1 = Valuation::zeroed(&vars);
        v1.set(mode, Value::Enum(1));
        set.insert(Trace::new(vec![v0, v1]));
        let abs =
            AlphabetAbstraction::from_traces(&vars, &[mode], &set, AbstractionConfig::default());
        assert_eq!(abs.num_letters(), 2);
        let mut unseen = Valuation::zeroed(&vars);
        unseen.set(mode, Value::Enum(2));
        assert_eq!(abs.letter_of(&unseen), None);
    }

    #[test]
    fn incremental_abstraction_matches_from_traces() {
        use amle_system::TraceStore;
        let (vars, temp, on, traces) = thermostat_traces();
        let config = AbstractionConfig {
            max_distinct_values: 4,
            max_thresholds: 4,
        };
        let observables = [temp, on];
        let mut store = TraceStore::from_trace_set(&traces);
        let mut inc = IncrementalAbstraction::new(config);
        assert_eq!(
            inc.update(&vars, &observables, &store),
            AbstractionUpdate::Rebuilt
        );

        let assert_equivalent = |inc: &IncrementalAbstraction, store: &TraceStore| {
            let fresh = AlphabetAbstraction::from_traces(
                &vars,
                &observables,
                &store.to_trace_set(),
                config,
            );
            let built = inc.abstraction();
            assert_eq!(built.per_var, fresh.per_var, "cell structure diverged");
            assert_eq!(built.num_letters(), fresh.num_letters());
            for letter in fresh.letters() {
                assert_eq!(built.predicate(letter), fresh.predicate(letter));
            }
            for (trace, word) in store.traces().zip(inc.words()) {
                let fresh_word = fresh
                    .word_of(store.materialize(trace).observations())
                    .expect("observed trace has a word");
                assert_eq!(*word, fresh_word, "cached word diverged");
            }
        };
        assert_equivalent(&inc, &store);

        // Grow the store with a splice whose observations are already known
        // (stable alphabet → incremental), then with a brand-new observation
        // (changed cell structure → rebuild). Both must match from-scratch.
        let first = store.traces().next().unwrap();
        let known = store.materialize(first).observations()[3].clone();
        let prefix = store.prefix(first, 5);
        store.splice(prefix, &known, &known).unwrap();
        assert_eq!(
            inc.update(&vars, &observables, &store),
            AbstractionUpdate::Incremental { new_traces: 1 }
        );
        assert_equivalent(&inc, &store);

        let mut fresh_obs = Valuation::zeroed(&vars);
        fresh_obs.set(temp, Value::Int(3));
        fresh_obs.set(on, Value::Bool(true));
        store.splice(prefix, &fresh_obs, &known).unwrap();
        assert_eq!(
            inc.update(&vars, &observables, &store),
            AbstractionUpdate::Rebuilt
        );
        assert_equivalent(&inc, &store);

        // A different store resets the state entirely.
        let other = TraceStore::from_trace_set(&traces);
        assert_eq!(
            inc.update(&vars, &observables, &other),
            AbstractionUpdate::Rebuilt
        );
        assert_equivalent(&inc, &other);
    }

    /// Letters with equal guards share one interned expression node: two
    /// independently built abstractions over the same data synthesise
    /// predicates with identical `ExprId`s, and repeated `predicate()` calls
    /// return the letter's cached node instead of re-assembling the
    /// conjunction.
    #[test]
    fn letter_predicates_are_interned_across_rebuilds() {
        let (vars, temp, on, traces) = thermostat_traces();
        let config = AbstractionConfig::default();
        let a = AlphabetAbstraction::from_traces(&vars, &[temp, on], &traces, config);
        let b = AlphabetAbstraction::from_traces(&vars, &[temp, on], &traces, config);
        assert_eq!(a.num_letters(), b.num_letters());
        for letter in a.letters() {
            assert_eq!(
                a.predicate(letter).id(),
                b.predicate(letter).id(),
                "equal guards must be one hash-consed node"
            );
            assert_eq!(a.predicate(letter).id(), a.predicate(letter).id());
        }
    }

    #[test]
    fn empty_traces_yield_empty_alphabet() {
        let mut vars = VarSet::new();
        let x = vars.declare("x", Sort::int(4)).unwrap();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[x],
            &TraceSet::new(),
            AbstractionConfig::default(),
        );
        assert_eq!(abs.num_letters(), 0);
    }
}
