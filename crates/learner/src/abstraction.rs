//! Alphabet abstraction: synthesising a finite predicate alphabet from
//! concrete trace data.
//!
//! The symbolic models of the paper (Fig. 2) label transitions with
//! predicates over the observables, such as `inp.temp > T_thresh && s' = On`.
//! To learn such models from concrete valuations, the learner first
//! generalises the observations into a finite set of *letters*, each
//! described by a conjunction of per-variable atomic predicates:
//!
//! * variables with few observed distinct values (booleans, enumerations,
//!   small counters) get equality predicates `x == c`;
//! * numeric variables with many observed values get interval predicates
//!   whose thresholds are mined from the data: a boundary is introduced
//!   wherever neighbouring observations (ordered by the numeric value) lead
//!   to different next values of the discrete variables — the 1-D
//!   decision-boundary rule that recovers the `T_thresh`-style guards of
//!   threshold controllers.
//!
//! The abstraction maps every observation to exactly one letter, so abstract
//! words are well defined and the learned automaton over letters can be
//! translated back into a symbolic NFA whose guards are the letters'
//! predicates.

use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
use amle_system::TraceSet;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifier of an abstract letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LetterId(pub(crate) usize);

impl LetterId {
    /// The dense index of the letter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Tuning knobs of the alphabet abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractionConfig {
    /// Variables with at most this many observed distinct values are
    /// abstracted by equality predicates; others by mined intervals.
    pub max_distinct_values: usize,
    /// Upper bound on the number of interval thresholds mined per numeric
    /// variable (the most frequently voted boundaries are kept).
    pub max_thresholds: usize,
}

impl Default for AbstractionConfig {
    fn default() -> Self {
        AbstractionConfig {
            max_distinct_values: 12,
            max_thresholds: 8,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VarAbstraction {
    /// One cell per observed value; the predicate of cell `i` is `x == values[i]`.
    Exact { values: Vec<i64> },
    /// Cells are the intervals induced by the sorted thresholds:
    /// `(-∞, t0), [t0, t1), …, [t_last, ∞)`.
    Intervals { thresholds: Vec<i64> },
}

/// A finite predicate alphabet synthesised from trace data.
#[derive(Debug, Clone)]
pub struct AlphabetAbstraction {
    vars: VarSet,
    observables: Vec<VarId>,
    per_var: Vec<VarAbstraction>,
    letters: Vec<Vec<usize>>,
    index: HashMap<Vec<usize>, LetterId>,
}

impl AlphabetAbstraction {
    /// Builds the abstraction from a trace set.
    ///
    /// Only valuations of the `observables` are considered. Every observation
    /// occurring in `traces` is guaranteed to map to a letter.
    pub fn from_traces(
        vars: &VarSet,
        observables: &[VarId],
        traces: &TraceSet,
        config: AbstractionConfig,
    ) -> Self {
        let observations: Vec<&Valuation> = traces
            .iter()
            .flat_map(|t| t.observations().iter())
            .collect();

        // 1. Observed value sets per observable.
        let mut distinct: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); observables.len()];
        for obs in &observations {
            for (i, id) in observables.iter().enumerate() {
                distinct[i].insert(obs.value(*id).to_i64());
            }
        }

        // 2. Decide per-variable abstraction.
        let discrete: Vec<bool> = distinct
            .iter()
            .enumerate()
            .map(|(i, set)| {
                let sort = vars.sort(observables[i]);
                sort.is_bool() || sort.is_enum() || set.len() <= config.max_distinct_values
            })
            .collect();

        let mut per_var = Vec::with_capacity(observables.len());
        for (i, id) in observables.iter().enumerate() {
            if discrete[i] {
                per_var.push(VarAbstraction::Exact {
                    values: distinct[i].iter().copied().collect(),
                });
            } else {
                let thresholds = mine_thresholds(
                    traces,
                    observables,
                    &discrete,
                    *id,
                    i,
                    config.max_thresholds,
                );
                per_var.push(VarAbstraction::Intervals { thresholds });
            }
        }

        let mut abstraction = AlphabetAbstraction {
            vars: vars.clone(),
            observables: observables.to_vec(),
            per_var,
            letters: Vec::new(),
            index: HashMap::new(),
        };

        // 3. Register a letter for every observed cell combination.
        for obs in &observations {
            let cells = abstraction.cells_of(obs);
            abstraction.intern(cells);
        }
        abstraction
    }

    fn intern(&mut self, cells: Vec<usize>) -> LetterId {
        if let Some(id) = self.index.get(&cells) {
            return *id;
        }
        let id = LetterId(self.letters.len());
        self.letters.push(cells.clone());
        self.index.insert(cells, id);
        id
    }

    fn cell_of(&self, var_index: usize, raw: i64) -> Option<usize> {
        match &self.per_var[var_index] {
            VarAbstraction::Exact { values } => values.iter().position(|v| *v == raw),
            VarAbstraction::Intervals { thresholds } => {
                Some(thresholds.iter().filter(|t| raw >= **t).count())
            }
        }
    }

    fn cells_of(&self, obs: &Valuation) -> Vec<usize> {
        self.observables
            .iter()
            .enumerate()
            .map(|(i, id)| {
                self.cell_of(i, obs.value(*id).to_i64())
                    .unwrap_or(usize::MAX)
            })
            .collect()
    }

    /// The number of distinct letters observed when the abstraction was built.
    pub fn num_letters(&self) -> usize {
        self.letters.len()
    }

    /// The observable variables the abstraction ranges over.
    pub fn observables(&self) -> &[VarId] {
        &self.observables
    }

    /// Maps an observation to its letter, or `None` if the observation falls
    /// into a cell combination that never occurred when the abstraction was
    /// built (e.g. a counterexample with a brand-new discrete value).
    pub fn letter_of(&self, obs: &Valuation) -> Option<LetterId> {
        let cells = self.cells_of(obs);
        if cells.contains(&usize::MAX) {
            return None;
        }
        self.index.get(&cells).copied()
    }

    /// Converts a sequence of observations into an abstract word, or `None`
    /// if any observation has no letter.
    pub fn word_of(&self, observations: &[Valuation]) -> Option<Vec<LetterId>> {
        observations.iter().map(|o| self.letter_of(o)).collect()
    }

    /// The symbolic predicate characterising a letter: the conjunction of the
    /// per-variable atomic predicates of its cells.
    ///
    /// # Panics
    ///
    /// Panics if the letter id does not belong to this abstraction.
    pub fn predicate(&self, letter: LetterId) -> Expr {
        let cells = &self.letters[letter.0];
        let mut conjuncts = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            conjuncts.push(self.cell_predicate(i, *cell));
        }
        Expr::and_all(conjuncts)
    }

    fn cell_predicate(&self, var_index: usize, cell: usize) -> Expr {
        let id = self.observables[var_index];
        let sort = self.vars.sort(id).clone();
        let var = Expr::var(id, sort.clone());
        match &self.per_var[var_index] {
            VarAbstraction::Exact { values } => {
                let raw = values[cell];
                match &sort {
                    Sort::Bool => {
                        if raw != 0 {
                            var
                        } else {
                            var.not()
                        }
                    }
                    _ => {
                        let c = Expr::constant(&sort, Value::from_i64(&sort, raw))
                            .expect("observed value fits its sort");
                        var.eq(&c)
                    }
                }
            }
            VarAbstraction::Intervals { thresholds } => {
                if thresholds.is_empty() {
                    return Expr::true_();
                }
                let constant = |t: i64| {
                    Expr::constant(&sort, Value::from_i64(&sort, t))
                        .expect("threshold is an observed value")
                };
                let lower = if cell > 0 {
                    Some(var.ge(&constant(thresholds[cell - 1])))
                } else {
                    None
                };
                let upper = if cell < thresholds.len() {
                    Some(var.lt(&constant(thresholds[cell])))
                } else {
                    None
                };
                match (lower, upper) {
                    (Some(l), Some(u)) => l.and(&u),
                    (Some(l), None) => l,
                    (None, Some(u)) => u,
                    (None, None) => Expr::true_(),
                }
            }
        }
    }

    /// All letters of the abstraction.
    pub fn letters(&self) -> impl Iterator<Item = LetterId> {
        (0..self.letters.len()).map(LetterId)
    }
}

/// Mines interval thresholds for a numeric variable: a boundary is proposed
/// between two observations whenever their successor observations differ on
/// some discrete observable, and the most frequently proposed boundaries are
/// kept.
fn mine_thresholds(
    traces: &TraceSet,
    observables: &[VarId],
    discrete: &[bool],
    var: VarId,
    _var_index: usize,
    max_thresholds: usize,
) -> Vec<i64> {
    // Collect (value of `var` at time t, class = discrete observables at t+1).
    let mut samples: Vec<(i64, Vec<i64>)> = Vec::new();
    for trace in traces.iter() {
        for (current, next) in trace.steps() {
            let class: Vec<i64> = observables
                .iter()
                .enumerate()
                .filter(|(i, _)| discrete[*i])
                .map(|(_, id)| next.value(*id).to_i64())
                .collect();
            samples.push((current.value(var).to_i64(), class));
        }
    }
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort();

    // Vote for boundaries between adjacent samples with different classes.
    let mut votes: BTreeMap<i64, usize> = BTreeMap::new();
    for pair in samples.windows(2) {
        let (a, ca) = &pair[0];
        let (b, cb) = &pair[1];
        if a != b && ca != cb {
            *votes.entry(*b).or_insert(0) += 1;
        }
    }
    let mut boundaries: Vec<(usize, i64)> = votes.into_iter().map(|(t, c)| (c, t)).collect();
    boundaries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut thresholds: Vec<i64> = boundaries
        .into_iter()
        .take(max_thresholds)
        .map(|(_, t)| t)
        .collect();
    thresholds.sort_unstable();
    thresholds.dedup();
    thresholds
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Sort;
    use amle_system::{Trace, TraceSet};

    /// Builds traces of a thermostat: `temp` is a noisy numeric input, `on`
    /// follows `temp > 75` with a one-step delay.
    fn thermostat_traces() -> (VarSet, VarId, VarId, TraceSet) {
        let mut vars = VarSet::new();
        let temp = vars.declare("temp", Sort::int(8)).unwrap();
        let on = vars.declare("on", Sort::Bool).unwrap();
        let mut set = TraceSet::new();
        let temp_seqs: Vec<Vec<i64>> = vec![
            vec![10, 30, 80, 90, 95, 60, 40, 85, 76, 75, 74, 100],
            vec![70, 71, 72, 77, 79, 81, 20, 25, 90, 12, 99, 50],
            vec![5, 95, 7, 93, 11, 89, 13, 87, 17, 83, 19, 81],
        ];
        for seq in temp_seqs {
            let mut obs = Vec::new();
            let mut prev_on = false;
            for t in seq {
                let mut v = Valuation::zeroed(&vars);
                v.set(temp, Value::Int(t));
                v.set(on, Value::Bool(prev_on));
                obs.push(v);
                prev_on = t > 75;
            }
            set.insert(Trace::new(obs));
        }
        (vars, temp, on, set)
    }

    #[test]
    fn discrete_variables_get_equality_cells() {
        let (vars, _, on, traces) = thermostat_traces();
        let abs =
            AlphabetAbstraction::from_traces(&vars, &[on], &traces, AbstractionConfig::default());
        assert_eq!(abs.num_letters(), 2);
        let preds: Vec<String> = abs
            .letters()
            .map(|l| abs.predicate(l).to_string())
            .collect();
        assert!(preds.iter().any(|p| p.contains('!')));
    }

    #[test]
    fn numeric_variable_gets_threshold_near_75() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig {
                max_distinct_values: 4,
                max_thresholds: 3,
            },
        );
        // The mined thresholds must include a boundary separating <=75 from >75.
        let VarAbstraction::Intervals { thresholds } = &abs.per_var[0] else {
            panic!("temp should be abstracted by intervals");
        };
        assert!(
            thresholds.iter().any(|t| (*t > 75) && (*t <= 81)),
            "expected a boundary just above 75, got {thresholds:?}"
        );
    }

    #[test]
    fn every_observation_has_a_letter_and_predicate_holds() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig {
                max_distinct_values: 4,
                max_thresholds: 4,
            },
        );
        for trace in traces.iter() {
            for obs in trace.observations() {
                let letter = abs.letter_of(obs).expect("observed valuation has a letter");
                assert!(abs.predicate(letter).eval_bool(obs));
            }
        }
    }

    #[test]
    fn letters_are_mutually_exclusive_on_observed_data() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig::default(),
        );
        for trace in traces.iter() {
            for obs in trace.observations() {
                let holding: Vec<LetterId> = abs
                    .letters()
                    .filter(|l| abs.predicate(*l).eval_bool(obs))
                    .collect();
                assert_eq!(holding.len(), 1, "exactly one letter predicate must hold");
                assert_eq!(holding[0], abs.letter_of(obs).unwrap());
            }
        }
    }

    #[test]
    fn word_conversion() {
        let (vars, temp, on, traces) = thermostat_traces();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[temp, on],
            &traces,
            AbstractionConfig::default(),
        );
        let trace = &traces.traces()[0];
        let word = abs.word_of(trace.observations()).unwrap();
        assert_eq!(word.len(), trace.len());

        // A made-up observation with an unseen `on/temp` combination may
        // produce no letter.
        let mut unseen = Valuation::zeroed(&vars);
        unseen.set(temp, Value::Int(200));
        unseen.set(on, Value::Bool(true));
        let _ = abs.letter_of(&unseen); // must not panic either way
    }

    #[test]
    fn unseen_discrete_value_has_no_letter() {
        let mut vars = VarSet::new();
        let mode = vars
            .declare("mode", Sort::enumeration("Mode", ["A", "B", "C"]))
            .unwrap();
        let mut set = TraceSet::new();
        let mut v0 = Valuation::zeroed(&vars);
        v0.set(mode, Value::Enum(0));
        let mut v1 = Valuation::zeroed(&vars);
        v1.set(mode, Value::Enum(1));
        set.insert(Trace::new(vec![v0, v1]));
        let abs =
            AlphabetAbstraction::from_traces(&vars, &[mode], &set, AbstractionConfig::default());
        assert_eq!(abs.num_letters(), 2);
        let mut unseen = Valuation::zeroed(&vars);
        unseen.set(mode, Value::Enum(2));
        assert_eq!(abs.letter_of(&unseen), None);
    }

    #[test]
    fn empty_traces_yield_empty_alphabet() {
        let mut vars = VarSet::new();
        let x = vars.declare("x", Sort::int(4)).unwrap();
        let abs = AlphabetAbstraction::from_traces(
            &vars,
            &[x],
            &TraceSet::new(),
            AbstractionConfig::default(),
        );
        assert_eq!(abs.num_letters(), 0);
    }
}
