//! # amle-bitblast
//!
//! Word-level to CNF translation (bit-blasting) of `amle-expr` expressions,
//! emitting clauses into any [`amle_sat::ClauseSink`] — a plain
//! [`amle_sat::CnfFormula`] container by default, or a live
//! [`amle_sat::IncrementalSolver`] for the persistent incremental sessions
//! used by the model checker and the SAT-based learner.
//!
//! The central type is [`Encoder`]. It manages *frames* — copies of the
//! system variables at consecutive time steps — so that the bounded model
//! checker in `amle-checker` can unroll a transition relation:
//!
//! * [`Encoder::word`] returns (allocating on demand) the bit-vector of a
//!   variable in a given frame,
//! * [`Encoder::encode_bool`] Tseitin-encodes a boolean expression over a
//!   frame and returns its output literal,
//! * [`Encoder::assert_expr`] / [`Encoder::assert_not_expr`] add unit
//!   constraints,
//! * [`Encoder::assert_var_equals_expr_across`] constrains a variable in one
//!   frame to equal an expression evaluated over another frame — exactly the
//!   shape `x' = f(X)` of the paper's transition-relation implementations,
//! * [`Encoder::decode_frame`] reads a satisfying model back into a
//!   word-level [`amle_expr::Valuation`] (used to produce counterexample
//!   traces).
//!
//! Supported operations mirror the expression language: boolean connectives,
//! fixed-width wrap-around add/sub/mul/negate, signed and unsigned
//! comparisons, equality over booleans/integers/enumerations and
//! if-then-else.
//!
//! ## Example
//!
//! ```
//! use amle_bitblast::Encoder;
//! use amle_expr::{Expr, Sort, VarSet};
//! use amle_sat::SolveResult;
//!
//! let mut vars = VarSet::new();
//! let x = vars.declare("x", Sort::int(8)).unwrap();
//! let xe = Expr::var(x, Sort::int(8));
//!
//! // Is there an x with x + 1 == 0 (wrap-around)? Yes: x = 255.
//! let mut enc = Encoder::new(&vars);
//! let query = xe.add(&Expr::int_val(1, 8)).eq(&Expr::int_val(0, 8));
//! enc.assert_expr(0, &query);
//! let mut solver = enc.cnf().to_solver();
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let model = solver.model();
//! let valuation = enc.decode_frame(&model, 0);
//! assert_eq!(valuation.value(x).to_i64(), 255);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoder;

pub use encoder::{Encoder, Word};

#[cfg(test)]
mod proptests;
