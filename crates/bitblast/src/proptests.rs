//! Property-based tests: the bit-blasted semantics must agree with the
//! word-level evaluator of `amle-expr` on random expressions and valuations.

use crate::Encoder;
use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
use amle_sat::SolveResult;
use proptest::prelude::*;

const WIDTH: u32 = 5;

fn var_set() -> VarSet {
    let mut vars = VarSet::new();
    vars.declare("a", Sort::int(WIDTH)).unwrap();
    vars.declare("b", Sort::int(WIDTH)).unwrap();
    vars.declare("s", Sort::signed_int(WIDTH)).unwrap();
    vars.declare("p", Sort::Bool).unwrap();
    vars
}

fn arb_int_expr(depth: u32, signed: bool) -> BoxedStrategy<Expr> {
    let var_idx: usize = if signed { 2 } else { 0 };
    let sort = if signed {
        Sort::signed_int(WIDTH)
    } else {
        Sort::int(WIDTH)
    };
    if depth == 0 {
        let (lo, hi) = sort.value_range();
        let s2 = sort.clone();
        prop_oneof![
            (lo..=hi).prop_map(move |v| Expr::constant(&s2, Value::Int(v)).unwrap()),
            Just(Expr::var(VarId::from_index(var_idx), sort.clone())),
            Just(Expr::var(
                VarId::from_index(if signed { 2 } else { 1 }),
                sort
            )),
        ]
        .boxed()
    } else {
        let sub = arb_int_expr(depth - 1, signed);
        let subb = arb_bool_expr(depth - 1, signed);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.add(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.sub(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.mul(&b)),
            sub.clone().prop_map(|a| a.neg()),
            (subb, sub.clone(), sub.clone()).prop_map(|(c, a, b)| c.ite(&a, &b)),
            sub,
        ]
        .boxed()
    }
}

fn arb_bool_expr(depth: u32, signed: bool) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            any::<bool>().prop_map(Expr::bool_const),
            Just(Expr::var(VarId::from_index(3), Sort::Bool)),
        ]
        .boxed()
    } else {
        let sub = arb_bool_expr(depth - 1, signed);
        let subi = arb_int_expr(depth - 1, signed);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.or(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.xor(&b)),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| a.implies(&b)),
            sub.clone().prop_map(|a| a.not()),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.lt(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.le(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.gt(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.ge(&b)),
            (subi.clone(), subi.clone()).prop_map(|(a, b)| a.eq(&b)),
            (subi.clone(), subi).prop_map(|(a, b)| a.ne(&b)),
            sub,
        ]
        .boxed()
    }
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    let (ulo, uhi) = Sort::int(WIDTH).value_range();
    let (slo, shi) = Sort::signed_int(WIDTH).value_range();
    (ulo..=uhi, ulo..=uhi, slo..=shi, any::<bool>()).prop_map(|(a, b, s, p)| {
        let vars = var_set();
        let mut v = Valuation::zeroed(&vars);
        v.set(VarId::from_index(0), Value::Int(a));
        v.set(VarId::from_index(1), Value::Int(b));
        v.set(VarId::from_index(2), Value::Int(s));
        v.set(VarId::from_index(3), Value::Bool(p));
        v
    })
}

/// Encodes `expr`, pins all variables to the valuation, solves and compares
/// the decoded truth of `expr` against direct evaluation.
fn check_agreement(expr: &Expr, valuation: &Valuation) -> Result<(), TestCaseError> {
    let vars = var_set();
    let mut enc = Encoder::new(&vars);
    let lit = enc.encode_bool(0, expr);
    for (id, _) in vars.iter() {
        enc.assert_var_value(0, id, valuation.value(id));
    }
    let mut solver = enc.cnf().to_solver();
    prop_assert_eq!(solver.solve(), SolveResult::Sat);
    let model = solver.model();
    let encoded_value = model[lit.var().index()] == lit.is_positive();
    prop_assert_eq!(encoded_value, expr.eval_bool(valuation));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unsigned_expressions_agree_with_eval(e in arb_bool_expr(3, false), v in arb_valuation()) {
        check_agreement(&e, &v)?;
    }

    #[test]
    fn signed_expressions_agree_with_eval(e in arb_bool_expr(3, true), v in arb_valuation()) {
        check_agreement(&e, &v)?;
    }

    #[test]
    fn satisfiable_iff_some_valuation_satisfies(e in arb_bool_expr(2, false)) {
        // Encode the expression with free variables; SAT result must agree
        // with a brute-force search over the (small) valuation space.
        let vars = var_set();
        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &e);
        let mut solver = enc.cnf().to_solver();
        let encoded_sat = solver.solve() == SolveResult::Sat;

        let (ulo, uhi) = Sort::int(WIDTH).value_range();
        let (slo, shi) = Sort::signed_int(WIDTH).value_range();
        let mut brute = false;
        'outer: for a in ulo..=uhi {
            for b in ulo..=uhi {
                for s in [slo, -1, 0, 1, shi] {
                    for p in [false, true] {
                        let mut v = Valuation::zeroed(&vars);
                        v.set(VarId::from_index(0), Value::Int(a));
                        v.set(VarId::from_index(1), Value::Int(b));
                        v.set(VarId::from_index(2), Value::Int(s));
                        v.set(VarId::from_index(3), Value::Bool(p));
                        if e.eval_bool(&v) {
                            brute = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        // The brute force only samples five values of the signed variable, so
        // it can miss satisfying assignments that the solver finds — but not
        // the other way round.
        if brute {
            prop_assert!(encoded_sat);
        }
        if !encoded_sat {
            prop_assert!(!brute);
        }
    }

    #[test]
    fn decoded_model_satisfies_expression(e in arb_bool_expr(3, false)) {
        let vars = var_set();
        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &e);
        let mut solver = enc.cnf().to_solver();
        if solver.solve() == SolveResult::Sat {
            let valuation = enc.decode_frame(&solver.model(), 0);
            prop_assert!(e.eval_bool(&valuation));
        }
    }
}
