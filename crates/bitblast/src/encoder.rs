//! The Tseitin bit-blasting encoder.

use amle_expr::{BinOp, Expr, ExprId, ExprKind, Sort, UnOp, Valuation, Value, VarId, VarSet};
use amle_sat::{ClauseSink, CnfFormula, Lit};
use std::collections::HashMap;

/// A bit-vector operand: literals in LSB-first order plus a signedness flag
/// controlling how comparisons interpret the most significant bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<Lit>,
    signed: bool,
}

impl Word {
    /// The bit literals, least significant first.
    pub fn bits(&self) -> &[Lit] {
        &self.bits
    }

    /// Width of the word in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether comparisons treat this word as two's complement.
    pub fn is_signed(&self) -> bool {
        self.signed
    }
}

/// Incremental word-level to CNF encoder over time frames.
///
/// The encoder is generic over where the clauses go: the default sink is a
/// plain [`CnfFormula`] blob (handy for DIMACS dumps and golden tests), but
/// any [`ClauseSink`] works — in particular an
/// [`amle_sat::IncrementalSolver`], which is how the k-induction checker and
/// the SAT-based learner keep one persistent solver session per workload
/// instead of re-encoding from scratch at every query.
///
/// Boolean and word encodings are memoised per `(frame, expression)`, keyed
/// by the expression's interned [`ExprId`] — probing is a constant-time
/// integer lookup, and structurally identical expressions built at different
/// sites (the refinement loop rebuilds its predicates every iteration) hit
/// the same entry without a tree walk. Repeated queries over a persistent
/// sink therefore reuse the Tseitin definitions they already emitted.
///
/// See the [crate documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct Encoder<S: ClauseSink = CnfFormula> {
    vars: VarSet,
    sink: S,
    true_lit: Lit,
    frames: HashMap<(usize, u32), Word>,
    bool_cache: HashMap<(usize, ExprId), Lit>,
    word_cache: HashMap<(usize, ExprId), Word>,
}

impl Encoder<CnfFormula> {
    /// Creates an encoder for systems over the given variable table, writing
    /// into a fresh [`CnfFormula`].
    pub fn new(vars: &VarSet) -> Self {
        Encoder::with_sink(vars, CnfFormula::new())
    }

    /// The CNF accumulated so far.
    pub fn cnf(&self) -> &CnfFormula {
        &self.sink
    }

    /// Consumes the encoder and returns the accumulated CNF.
    pub fn into_cnf(self) -> CnfFormula {
        self.sink
    }
}

impl<S: ClauseSink> Encoder<S> {
    /// Creates an encoder emitting clauses directly into `sink` (a CNF
    /// container or a live incremental solver).
    ///
    /// The sink should be fresh: the encoder allocates its constant-true
    /// variable first and assumes exclusive ownership of the variable space.
    pub fn with_sink(vars: &VarSet, mut sink: S) -> Self {
        let t = sink.new_var();
        let true_lit = Lit::positive(t);
        sink.add_clause(&[true_lit]);
        Encoder {
            vars: vars.clone(),
            sink,
            true_lit,
            frames: HashMap::new(),
            bool_cache: HashMap::new(),
            word_cache: HashMap::new(),
        }
    }

    /// The clause sink the encoder writes into.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the clause sink (e.g. to solve when the sink is an
    /// incremental solver).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the encoder and returns the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The literal that is constrained to be true in every model.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The literal that is constrained to be false in every model.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    fn fresh_lit(&mut self) -> Lit {
        Lit::positive(self.sink.new_var())
    }

    /// The bit-vector of variable `id` in time frame `frame`, allocating the
    /// bits (and any sort range constraints) on first use.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared in the encoder's variable table.
    pub fn word(&mut self, frame: usize, id: VarId) -> Word {
        let key = (frame, id.index() as u32);
        if let Some(w) = self.frames.get(&key) {
            return w.clone();
        }
        let sort = self.vars.sort(id).clone();
        let width = sort.bit_width() as usize;
        let bits: Vec<Lit> = (0..width).map(|_| self.fresh_lit()).collect();
        let signed = matches!(sort, Sort::Int { signed: true, .. });
        let word = Word { bits, signed };
        // Enumeration sorts with a non-power-of-two cardinality need the
        // out-of-range codes blocked.
        if let Sort::Enum(e) = &sort {
            let n = e.variants.len() as u64;
            for code in n..(1u64 << width) {
                let clause: Vec<Lit> = (0..width)
                    .map(|b| {
                        let bit = word.bits[b];
                        if code & (1 << b) != 0 {
                            !bit
                        } else {
                            bit
                        }
                    })
                    .collect();
                self.sink.add_clause(&clause);
            }
        }
        self.frames.insert(key, word.clone());
        word
    }

    // ------------------------------------------------------------------
    // Gate-level helpers (Tseitin encodings)
    // ------------------------------------------------------------------

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() || b == self.false_lit() {
            return self.false_lit();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let out = self.fresh_lit();
        self.sink.add_clause(&[!out, a]);
        self.sink.add_clause(&[!out, b]);
        self.sink.add_clause(&[out, !a, !b]);
        out
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() {
            return b;
        }
        if b == self.false_lit() {
            return a;
        }
        if a == self.true_lit {
            return !b;
        }
        if b == self.true_lit {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        let out = self.fresh_lit();
        self.sink.add_clause(&[!out, a, b]);
        self.sink.add_clause(&[!out, !a, !b]);
        self.sink.add_clause(&[out, !a, b]);
        self.sink.add_clause(&[out, a, !b]);
        out
    }

    fn mux_gate(&mut self, sel: Lit, then_lit: Lit, else_lit: Lit) -> Lit {
        if sel == self.true_lit {
            return then_lit;
        }
        if sel == self.false_lit() {
            return else_lit;
        }
        if then_lit == else_lit {
            return then_lit;
        }
        let out = self.fresh_lit();
        self.sink.add_clause(&[!sel, !then_lit, out]);
        self.sink.add_clause(&[!sel, then_lit, !out]);
        self.sink.add_clause(&[sel, !else_lit, out]);
        self.sink.add_clause(&[sel, else_lit, !out]);
        out
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let ab = self.and_gate(a, b);
        let axb_cin = self.and_gate(axb, cin);
        let cout = self.or_gate(ab, axb_cin);
        (sum, cout)
    }

    fn add_words(&mut self, a: &Word, b: &Word) -> Word {
        debug_assert_eq!(a.width(), b.width());
        let mut bits = Vec::with_capacity(a.width());
        let mut carry = self.false_lit();
        for i in 0..a.width() {
            let (sum, cout) = self.full_adder(a.bits[i], b.bits[i], carry);
            bits.push(sum);
            carry = cout;
        }
        Word {
            bits,
            signed: a.signed,
        }
    }

    fn negate_word(&mut self, a: &Word) -> Word {
        // Two's complement: ~a + 1.
        let inverted = Word {
            bits: a.bits.iter().map(|l| !*l).collect(),
            signed: a.signed,
        };
        let one = self.constant_word(1, a.width(), a.signed);
        self.add_words(&inverted, &one)
    }

    fn sub_words(&mut self, a: &Word, b: &Word) -> Word {
        let neg_b = self.negate_word(b);
        self.add_words(a, &neg_b)
    }

    fn mul_words(&mut self, a: &Word, b: &Word) -> Word {
        debug_assert_eq!(a.width(), b.width());
        let width = a.width();
        let mut acc = self.constant_word(0, width, a.signed);
        for i in 0..width {
            // Partial product: (a << i) AND-ed with b[i], truncated to width.
            let mut partial = Vec::with_capacity(width);
            for j in 0..width {
                if j < i {
                    partial.push(self.false_lit());
                } else {
                    partial.push(self.and_gate(a.bits[j - i], b.bits[i]));
                }
            }
            let partial = Word {
                bits: partial,
                signed: a.signed,
            };
            acc = self.add_words(&acc, &partial);
        }
        acc
    }

    fn constant_word(&mut self, value: i64, width: usize, signed: bool) -> Word {
        let bits = (0..width)
            .map(|b| {
                if (value >> b) & 1 != 0 {
                    self.true_lit
                } else {
                    self.false_lit()
                }
            })
            .collect();
        Word { bits, signed }
    }

    fn eq_words(&mut self, a: &Word, b: &Word) -> Lit {
        debug_assert_eq!(a.width(), b.width());
        let mut acc = self.true_lit;
        for i in 0..a.width() {
            let same = !self.xor_gate(a.bits[i], b.bits[i]);
            acc = self.and_gate(acc, same);
        }
        acc
    }

    fn less_than_words(&mut self, a: &Word, b: &Word, or_equal: bool) -> Lit {
        debug_assert_eq!(a.width(), b.width());
        // For signed comparison flip the MSB of both operands and compare
        // unsigned.
        let width = a.width();
        let (a_bits, b_bits): (Vec<Lit>, Vec<Lit>) = if a.signed && width > 0 {
            let mut ab = a.bits.clone();
            let mut bb = b.bits.clone();
            ab[width - 1] = !ab[width - 1];
            bb[width - 1] = !bb[width - 1];
            (ab, bb)
        } else {
            (a.bits.clone(), b.bits.clone())
        };
        // Lexicographic from MSB down: lt = OR_i (prefix_equal_i AND !a_i AND b_i)
        let mut result = if or_equal {
            self.true_lit
        } else {
            self.false_lit()
        };
        // Build from LSB upwards: result_i = (!a_i && b_i) || (equal_i && result_{i-1})
        // where result_{-1} = or_equal ? true (for <=) : false (for <).
        for i in 0..width {
            let a_lt_b = {
                let na = !a_bits[i];
                self.and_gate(na, b_bits[i])
            };
            let eq_i = !self.xor_gate(a_bits[i], b_bits[i]);
            let keep = self.and_gate(eq_i, result);
            result = self.or_gate(a_lt_b, keep);
        }
        result
    }

    fn mux_words(&mut self, sel: Lit, a: &Word, b: &Word) -> Word {
        debug_assert_eq!(a.width(), b.width());
        let bits = (0..a.width())
            .map(|i| self.mux_gate(sel, a.bits[i], b.bits[i]))
            .collect();
        Word {
            bits,
            signed: a.signed,
        }
    }

    // ------------------------------------------------------------------
    // Expression encoding
    // ------------------------------------------------------------------

    /// Encodes a boolean expression over frame `frame` and returns its output
    /// literal.
    ///
    /// # Panics
    ///
    /// Panics if the expression is not boolean or mentions variables outside
    /// the encoder's variable table.
    pub fn encode_bool(&mut self, frame: usize, expr: &Expr) -> Lit {
        assert!(
            expr.sort().is_bool(),
            "encode_bool on {} expression",
            expr.sort()
        );
        let key = (frame, expr.id());
        if let Some(&lit) = self.bool_cache.get(&key) {
            return lit;
        }
        let lit = self.encode_bool_uncached(frame, expr);
        self.bool_cache.insert(key, lit);
        lit
    }

    fn encode_bool_uncached(&mut self, frame: usize, expr: &Expr) -> Lit {
        match expr.kind() {
            ExprKind::Const(Value::Bool(b)) => {
                if *b {
                    self.true_lit
                } else {
                    self.false_lit()
                }
            }
            ExprKind::Const(_) => unreachable!("boolean constant with non-bool value"),
            ExprKind::Var(id) => self.word(frame, *id).bits[0],
            ExprKind::Unary(UnOp::Not, a) => {
                let al = self.encode_bool(frame, a);
                !al
            }
            ExprKind::Unary(UnOp::Neg, _) => unreachable!("boolean negation uses Not"),
            ExprKind::Binary(op, a, b) => match op {
                BinOp::And => {
                    let al = self.encode_bool(frame, a);
                    let bl = self.encode_bool(frame, b);
                    self.and_gate(al, bl)
                }
                BinOp::Or => {
                    let al = self.encode_bool(frame, a);
                    let bl = self.encode_bool(frame, b);
                    self.or_gate(al, bl)
                }
                BinOp::Xor => {
                    let al = self.encode_bool(frame, a);
                    let bl = self.encode_bool(frame, b);
                    self.xor_gate(al, bl)
                }
                BinOp::Implies => {
                    let al = self.encode_bool(frame, a);
                    let bl = self.encode_bool(frame, b);
                    self.or_gate(!al, bl)
                }
                BinOp::Eq | BinOp::Ne => {
                    let eq = if a.sort().is_bool() {
                        let al = self.encode_bool(frame, a);
                        let bl = self.encode_bool(frame, b);
                        !self.xor_gate(al, bl)
                    } else {
                        let aw = self.encode_word(frame, a);
                        let bw = self.encode_word(frame, b);
                        self.eq_words(&aw, &bw)
                    };
                    if matches!(op, BinOp::Eq) {
                        eq
                    } else {
                        !eq
                    }
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let aw = self.encode_word(frame, a);
                    let bw = self.encode_word(frame, b);
                    match op {
                        BinOp::Lt => self.less_than_words(&aw, &bw, false),
                        BinOp::Le => self.less_than_words(&aw, &bw, true),
                        BinOp::Gt => self.less_than_words(&bw, &aw, false),
                        BinOp::Ge => self.less_than_words(&bw, &aw, true),
                        _ => unreachable!(),
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    unreachable!("arithmetic operation with boolean sort")
                }
            },
            ExprKind::Ite(c, t, e) => {
                let cl = self.encode_bool(frame, c);
                let tl = self.encode_bool(frame, t);
                let el = self.encode_bool(frame, e);
                self.mux_gate(cl, tl, el)
            }
        }
    }

    /// Encodes an integer or enumeration expression over frame `frame` as a
    /// bit-vector [`Word`].
    ///
    /// # Panics
    ///
    /// Panics if the expression is boolean (use [`Encoder::encode_bool`]) or
    /// mentions variables outside the encoder's variable table.
    pub fn encode_word(&mut self, frame: usize, expr: &Expr) -> Word {
        assert!(
            !expr.sort().is_bool(),
            "encode_word on a boolean expression; use encode_bool"
        );
        let key = (frame, expr.id());
        if let Some(word) = self.word_cache.get(&key) {
            return word.clone();
        }
        let word = self.encode_word_uncached(frame, expr);
        self.word_cache.insert(key, word.clone());
        word
    }

    fn encode_word_uncached(&mut self, frame: usize, expr: &Expr) -> Word {
        let width = expr.sort().bit_width() as usize;
        let signed = matches!(expr.sort(), Sort::Int { signed: true, .. });
        match expr.kind() {
            ExprKind::Const(v) => {
                let raw = v.to_i64();
                self.constant_word(raw, width, signed)
            }
            ExprKind::Var(id) => self.word(frame, *id),
            ExprKind::Unary(UnOp::Neg, a) => {
                let aw = self.encode_word(frame, a);
                self.negate_word(&aw)
            }
            ExprKind::Unary(UnOp::Not, _) => unreachable!("boolean not with word sort"),
            ExprKind::Binary(op, a, b) => {
                let aw = self.encode_word(frame, a);
                let bw = self.encode_word(frame, b);
                match op {
                    BinOp::Add => self.add_words(&aw, &bw),
                    BinOp::Sub => self.sub_words(&aw, &bw),
                    BinOp::Mul => self.mul_words(&aw, &bw),
                    _ => unreachable!("predicate operation with word sort"),
                }
            }
            ExprKind::Ite(c, t, e) => {
                let cl = self.encode_bool(frame, c);
                let tw = self.encode_word(frame, t);
                let ew = self.encode_word(frame, e);
                self.mux_words(cl, &tw, &ew)
            }
        }
    }

    /// Asserts that a boolean expression holds in frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Encoder::encode_bool`].
    pub fn assert_expr(&mut self, frame: usize, expr: &Expr) {
        let lit = self.encode_bool(frame, expr);
        self.sink.add_clause(&[lit]);
    }

    /// Asserts that a boolean expression does **not** hold in frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Encoder::encode_bool`].
    pub fn assert_not_expr(&mut self, frame: usize, expr: &Expr) {
        let lit = self.encode_bool(frame, expr);
        self.sink.add_clause(&[!lit]);
    }

    /// Asserts that at least one of the given literals holds (adds them as a
    /// single clause). Useful for disjunctions whose operands were encoded in
    /// different frames, such as "the target state is hit in some frame of
    /// the unrolling".
    pub fn assert_any(&mut self, lits: &[Lit]) {
        self.sink.add_clause(lits);
    }

    /// Asserts that variable `target` in frame `target_frame` equals the
    /// expression `expr` evaluated over frame `source_frame`.
    ///
    /// This is the building block for unrolling a functional transition
    /// relation: `x@(t+1) = update_x(X@t)`.
    ///
    /// # Panics
    ///
    /// Panics if the expression's sort differs from the variable's sort.
    pub fn assert_var_equals_expr_across(
        &mut self,
        target_frame: usize,
        target: VarId,
        source_frame: usize,
        expr: &Expr,
    ) {
        let target_sort = self.vars.sort(target).clone();
        assert!(
            expr.sort().compatible(&target_sort),
            "update expression sort {} does not match variable sort {}",
            expr.sort(),
            target_sort
        );
        if target_sort.is_bool() {
            let target_lit = self.word(target_frame, target).bits[0];
            let expr_lit = self.encode_bool(source_frame, expr);
            self.sink.add_clause(&[!target_lit, expr_lit]);
            self.sink.add_clause(&[target_lit, !expr_lit]);
        } else {
            let target_word = self.word(target_frame, target);
            let expr_word = self.encode_word(source_frame, expr);
            for i in 0..target_word.width() {
                let t = target_word.bits[i];
                let e = expr_word.bits[i];
                self.sink.add_clause(&[!t, e]);
                self.sink.add_clause(&[t, !e]);
            }
        }
    }

    /// Asserts that a variable in a frame holds a specific concrete value.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the variable's sort.
    pub fn assert_var_value(&mut self, frame: usize, id: VarId, value: Value) {
        let sort = self.vars.sort(id).clone();
        assert!(value.fits(&sort), "value {value} does not fit {}", sort);
        let word = self.word(frame, id);
        let raw = value.to_i64();
        for (b, lit) in word.bits.iter().enumerate() {
            if (raw >> b) & 1 != 0 {
                self.sink.add_clause(&[*lit]);
            } else {
                self.sink.add_clause(&[!*lit]);
            }
        }
    }

    /// Reads the values of all variables of a frame out of a satisfying
    /// model.
    ///
    /// Variables whose bits were never allocated in that frame take their
    /// zero value.
    pub fn decode_frame(&self, model: &[bool], frame: usize) -> Valuation {
        let mut valuation = Valuation::zeroed(&self.vars);
        for (id, info) in self.vars.iter() {
            let key = (frame, id.index() as u32);
            if let Some(word) = self.frames.get(&key) {
                let mut raw: i64 = 0;
                for (b, lit) in word.bits.iter().enumerate() {
                    let bit_true =
                        model.get(lit.var().index()).copied().unwrap_or(false) == lit.is_positive();
                    if bit_true {
                        raw |= 1 << b;
                    }
                }
                valuation.set(id, Value::from_i64(&info.sort, raw));
            }
        }
        valuation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_sat::SolveResult;

    fn vars8() -> (VarSet, VarId, VarId, VarId) {
        let mut vars = VarSet::new();
        let x = vars.declare("x", Sort::int(8)).unwrap();
        let y = vars.declare("y", Sort::int(8)).unwrap();
        let b = vars.declare("b", Sort::Bool).unwrap();
        (vars, x, y, b)
    }

    fn solve_for(enc: &Encoder) -> (SolveResult, Vec<bool>) {
        let mut solver = enc.cnf().to_solver();
        let r = solver.solve();
        (r, solver.model())
    }

    #[test]
    fn constant_queries() {
        let (vars, ..) = vars8();
        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &Expr::int_val(3, 8).lt(&Expr::int_val(5, 8)));
        assert_eq!(solve_for(&enc).0, SolveResult::Sat);

        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &Expr::int_val(7, 8).lt(&Expr::int_val(5, 8)));
        assert_eq!(solve_for(&enc).0, SolveResult::Unsat);
    }

    #[test]
    fn addition_wraps() {
        let (vars, x, ..) = vars8();
        let xe = Expr::var(x, Sort::int(8));
        let mut enc = Encoder::new(&vars);
        // x + 1 == 0 forces x == 255.
        enc.assert_expr(0, &xe.add(&Expr::int_val(1, 8)).eq(&Expr::int_val(0, 8)));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(enc.decode_frame(&model, 0).value(x).to_i64(), 255);
    }

    #[test]
    fn subtraction_and_multiplication() {
        let (vars, x, y, _) = vars8();
        let xe = Expr::var(x, Sort::int(8));
        let ye = Expr::var(y, Sort::int(8));
        let mut enc = Encoder::new(&vars);
        // x - y == 3 and y == 250 forces x == 253.
        enc.assert_expr(0, &xe.sub(&ye).eq(&Expr::int_val(3, 8)));
        enc.assert_var_value(0, y, Value::Int(250));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(enc.decode_frame(&model, 0).value(x).to_i64(), 253);

        let mut enc = Encoder::new(&vars);
        // x * 3 == 30 has the solution x = 10 (among wrap-around solutions).
        enc.assert_expr(0, &xe.mul(&Expr::int_val(3, 8)).eq(&Expr::int_val(30, 8)));
        enc.assert_expr(0, &xe.lt(&Expr::int_val(50, 8)));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(enc.decode_frame(&model, 0).value(x).to_i64(), 10);
    }

    #[test]
    fn signed_comparison() {
        let mut vars = VarSet::new();
        let s = vars.declare("s", Sort::signed_int(8)).unwrap();
        let se = Expr::var(s, Sort::signed_int(8));
        let mut enc = Encoder::new(&vars);
        // s < -5 is satisfiable with a negative s.
        enc.assert_expr(0, &se.lt(&Expr::signed_int_val(-5, 8)));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert!(enc.decode_frame(&model, 0).value(s).to_i64() < -5);

        let mut enc = Encoder::new(&vars);
        // s < -5 && s > 5 is unsatisfiable.
        enc.assert_expr(0, &se.lt(&Expr::signed_int_val(-5, 8)));
        enc.assert_expr(0, &se.gt(&Expr::signed_int_val(5, 8)));
        assert_eq!(solve_for(&enc).0, SolveResult::Unsat);
    }

    #[test]
    fn boolean_structure() {
        let (vars, _, _, b) = vars8();
        let be = Expr::var(b, Sort::Bool);
        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &be.or(&be.not()));
        assert_eq!(solve_for(&enc).0, SolveResult::Sat);

        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &be.and(&be.not()));
        assert_eq!(solve_for(&enc).0, SolveResult::Unsat);

        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &be.implies(&Expr::false_()));
        enc.assert_expr(0, &be);
        assert_eq!(solve_for(&enc).0, SolveResult::Unsat);
    }

    #[test]
    fn enum_range_blocked() {
        let mut vars = VarSet::new();
        let mode_sort = Sort::enumeration("Mode", ["A", "B", "C"]);
        let m = vars.declare("m", mode_sort.clone()).unwrap();
        let me = Expr::var(m, mode_sort.clone());
        // m != A, m != B, m != C is unsatisfiable because the 4th code (11)
        // is blocked by the range constraint.
        let mut enc = Encoder::new(&vars);
        for variant in ["A", "B", "C"] {
            enc.assert_expr(0, &me.ne(&Expr::enum_val(&mode_sort, variant)));
        }
        assert_eq!(solve_for(&enc).0, SolveResult::Unsat);

        let mut enc = Encoder::new(&vars);
        enc.assert_expr(0, &me.ne(&Expr::enum_val(&mode_sort, "A")));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        let v = enc.decode_frame(&model, 0).value(m).to_i64();
        assert!(v == 1 || v == 2);
    }

    #[test]
    fn cross_frame_transition() {
        let (vars, x, _, b) = vars8();
        let xe = Expr::var(x, Sort::int(8));
        let be = Expr::var(b, Sort::Bool);
        // x@1 = (b ? x+1 : x) evaluated over frame 0, with x@0 = 7, b@0 = true
        // forces x@1 = 8.
        let update = be.ite(&xe.add(&Expr::int_val(1, 8)), &xe);
        let mut enc = Encoder::new(&vars);
        enc.assert_var_value(0, x, Value::Int(7));
        enc.assert_var_value(0, b, Value::Bool(true));
        enc.assert_var_equals_expr_across(1, x, 0, &update);
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(enc.decode_frame(&model, 1).value(x).to_i64(), 8);
        assert_eq!(enc.decode_frame(&model, 0).value(x).to_i64(), 7);
    }

    #[test]
    fn assert_not_expr_blocks_models() {
        let (vars, x, ..) = vars8();
        let xe = Expr::var(x, Sort::int(8));
        let mut enc = Encoder::new(&vars);
        enc.assert_not_expr(0, &xe.lt(&Expr::int_val(255, 8)));
        let (r, model) = solve_for(&enc);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(enc.decode_frame(&model, 0).value(x).to_i64(), 255);
    }

    #[test]
    fn ite_on_words() {
        let (vars, x, y, b) = vars8();
        let xe = Expr::var(x, Sort::int(8));
        let ye = Expr::var(y, Sort::int(8));
        let be = Expr::var(b, Sort::Bool);
        let mut enc = Encoder::new(&vars);
        enc.assert_var_value(0, x, Value::Int(10));
        enc.assert_var_value(0, y, Value::Int(20));
        enc.assert_var_value(0, b, Value::Bool(false));
        enc.assert_expr(0, &be.ite(&xe, &ye).eq(&Expr::int_val(20, 8)));
        assert_eq!(solve_for(&enc).0, SolveResult::Sat);
    }

    #[test]
    fn decode_defaults_unallocated_vars_to_zero() {
        let (vars, x, y, _) = vars8();
        let mut enc = Encoder::new(&vars);
        enc.assert_var_value(0, x, Value::Int(9));
        let (_, model) = solve_for(&enc);
        let frame = enc.decode_frame(&model, 0);
        assert_eq!(frame.value(x).to_i64(), 9);
        assert_eq!(frame.value(y).to_i64(), 0);
    }

    #[test]
    fn true_and_false_lits() {
        let (vars, ..) = vars8();
        let enc = Encoder::new(&vars);
        assert_eq!(enc.false_lit(), !enc.true_lit());
    }
}
