//! End-to-end tests of the serving daemon over localhost TCP.
//!
//! The central assertion is the batch/daemon differential: trace batches
//! pushed through the protocol must produce a semantic fingerprint
//! byte-identical to [`ActiveLearner::run_with_traces`] on the concatenated
//! batches — including after a snapshot/restore round-trip into a second
//! daemon instance, and for both sequential and parallel condition engines.

use amle_benchmarks::{benchmark_by_name, Benchmark};
use amle_core::{ActiveLearner, ActiveLearnerConfig, ParallelConfig};
use amle_serve::json::{parse_json, Json};
use amle_serve::Server;
use amle_system::{wire, Simulator, Trace, TraceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

const COOLER: &str = "HomeClimateControlCooler";

/// Starts a daemon on an ephemeral port; returns its address and the join
/// handle of the serving thread (which returns once `shutdown` drains).
fn start_server() -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run()))
}

/// A tiny protocol client: one request line out, one response line in.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { reader, stream }
    }

    fn read_line(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        parse_json(line.trim_end()).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"))
    }

    fn send_raw(&mut self, line: &str) -> Json {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .expect("write request");
        self.read_line()
    }

    fn send(&mut self, request: &Json) -> Json {
        self.send_raw(&request.render())
    }

    fn send_ok(&mut self, request: &Json) -> Json {
        let response = self.send(request);
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "expected success, got {}",
            response.render()
        );
        response
    }
}

fn req<const N: usize>(op: &str, fields: [(&str, Json); N]) -> Json {
    let mut pairs = vec![("op".to_string(), Json::from(op))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    pairs.into_iter().collect()
}

fn cooler() -> Benchmark {
    benchmark_by_name(COOLER).expect("cooler benchmark exists")
}

/// Deterministic trace batches for the cooler, as both `Trace`s (for the
/// local batch run) and wire-encoded JSON (for the protocol).
fn sample_batch(benchmark: &Benchmark, count: usize, length: usize, seed: u64) -> Vec<Trace> {
    let mut rng = StdRng::seed_from_u64(seed);
    Simulator::new(&benchmark.system)
        .random_traces(count, length, &mut rng)
        .iter()
        .cloned()
        .collect()
}

fn encode_batch(traces: &[Trace]) -> Json {
    traces
        .iter()
        .map(|t| -> Json {
            wire::trace_to_rows(t)
                .into_iter()
                .map(|row| -> Json { row.into_iter().map(Json::from).collect() })
                .collect()
        })
        .collect()
}

fn batch_config(benchmark: &Benchmark, workers: usize) -> ActiveLearnerConfig {
    ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        k: benchmark.k,
        parallel: ParallelConfig::with_workers(workers),
        ..ActiveLearnerConfig::default()
    }
}

/// The reference result: the batch loop on the concatenated batches.
fn batch_fingerprint(benchmark: &Benchmark, batches: &[Vec<Trace>], workers: usize) -> String {
    let mut traces = TraceSet::new();
    for batch in batches {
        traces.extend(batch.iter().cloned());
    }
    let mut learner = ActiveLearner::new(
        &benchmark.system,
        amle_learner::HistoryLearner::default(),
        batch_config(benchmark, workers),
    );
    let report = learner.run_with_traces(traces).expect("batch run succeeds");
    report.semantic_fingerprint(benchmark.system.vars())
}

#[test]
fn concurrent_sessions_match_batch_run_and_stream_models() {
    let (addr, server) = start_server();
    let benchmark = cooler();

    // Two sessions with different worker counts and trace sets, driven from
    // concurrent client threads against the same daemon.
    let jobs: Vec<(String, usize, u64)> =
        vec![("alpha".to_string(), 1, 11), ("beta".to_string(), 4, 22)];
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|(name, workers, seed)| {
            let benchmark = benchmark.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.send_ok(&req(
                    "open",
                    [
                        ("session", Json::from(name.as_str())),
                        ("system", Json::from(COOLER)),
                        (
                            "config",
                            [("workers".to_string(), Json::from(workers))]
                                .into_iter()
                                .collect(),
                        ),
                    ],
                ));

                // A second connection subscribes to streamed model deltas.
                let mut subscriber = Client::connect(addr);
                subscriber.send_ok(&req("subscribe", [("session", Json::from(name.as_str()))]));

                let batch1 = sample_batch(&benchmark, 6, 10, seed);
                let batch2 = sample_batch(&benchmark, 6, 10, seed + 1);
                let ingested = client.send_ok(&req(
                    "ingest",
                    [
                        ("session", Json::from(name.as_str())),
                        ("traces", encode_batch(&batch1)),
                    ],
                ));
                assert_eq!(ingested.get("accepted").unwrap().as_u64(), Some(6));
                client.send_ok(&req(
                    "ingest",
                    [
                        ("session", Json::from(name.as_str())),
                        ("traces", encode_batch(&batch2)),
                    ],
                ));

                let refined =
                    client.send_ok(&req("refine", [("session", Json::from(name.as_str()))]));
                let daemon_fp = refined.get("fingerprint").unwrap().as_str().unwrap();
                let expected = batch_fingerprint(&benchmark, &[batch1, batch2], workers);
                assert_eq!(
                    daemon_fp, expected,
                    "daemon fingerprint diverged from the batch run ({name}, {workers} workers)"
                );
                assert_eq!(refined.get("converged"), Some(&Json::Bool(true)));

                // The subscriber received the same model, pushed not polled.
                let event = subscriber.read_line();
                assert_eq!(event.get("event").unwrap().as_str(), Some("refinement"));
                assert_eq!(
                    event.get("fingerprint").unwrap().as_str(),
                    Some(expected.as_str()),
                    "streamed fingerprint diverged ({name})"
                );
                assert!(event
                    .get("dot")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("digraph"));

                // Stats expose the session's counters and the process-global
                // interner gauge.
                let stats = client.send_ok(&req("stats", [("session", Json::from(name.as_str()))]));
                assert_eq!(stats.get("refinements").unwrap().as_u64(), Some(1));
                assert_eq!(stats.get("ingested_traces").unwrap().as_u64(), Some(12));
                assert!(
                    stats
                        .get("interner_gauge")
                        .unwrap()
                        .get("nodes_interned")
                        .unwrap()
                        .as_u64()
                        .unwrap()
                        > 0
                );

                client.send_ok(&req("close", [("session", Json::from(name.as_str()))]));
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let mut closer = Client::connect(addr);
    closer.send_ok(&req("shutdown", []));
    server.join().expect("server thread").expect("server io");
}

#[test]
fn snapshot_restore_round_trip_is_byte_identical() {
    let (addr, server) = start_server();
    let benchmark = cooler();
    let path = std::env::temp_dir().join(format!(
        "amle-snapshot-{}-{:?}.json",
        std::process::id(),
        thread::current().id()
    ));
    let path_str = path.to_str().unwrap().to_string();

    let batch1 = sample_batch(&benchmark, 6, 10, 7);
    let batch2 = sample_batch(&benchmark, 4, 12, 8);

    // First daemon: ingest, refine, snapshot, then keep going to produce
    // the continuation the restored session must reproduce.
    let mut client = Client::connect(addr);
    client.send_ok(&req(
        "open",
        [
            ("session", Json::from("cooler")),
            ("system", Json::from(COOLER)),
        ],
    ));
    client.send_ok(&req(
        "ingest",
        [
            ("session", Json::from("cooler")),
            ("traces", encode_batch(&batch1)),
        ],
    ));
    let refined1 = client.send_ok(&req("refine", [("session", Json::from("cooler"))]));
    let digest1 = refined1
        .get("fingerprint_digest")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let snapshot = client.send_ok(&req(
        "snapshot",
        [
            ("session", Json::from("cooler")),
            ("path", Json::from(path_str.as_str())),
        ],
    ));
    assert!(snapshot.get("store_digest").unwrap().as_str().is_some());

    client.send_ok(&req(
        "ingest",
        [
            ("session", Json::from("cooler")),
            ("traces", encode_batch(&batch2)),
        ],
    ));
    let refined2 = client.send_ok(&req("refine", [("session", Json::from("cooler"))]));
    let fp2 = refined2
        .get("fingerprint")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let model2 = client.send_ok(&req(
        "model",
        [
            ("session", Json::from("cooler")),
            ("format", Json::from("dot")),
        ],
    ));
    let dot2 = model2.get("dot").unwrap().as_str().unwrap().to_string();

    // Graceful shutdown with the session still open: the daemon drains it.
    client.send_ok(&req("shutdown", []));
    server.join().expect("server thread").expect("server io");

    // Second daemon instance (fresh process state as far as the session is
    // concerned): restore from the snapshot file and replay the tail.
    let (addr2, server2) = start_server();
    let mut client2 = Client::connect(addr2);
    let restored = client2.send_ok(&req(
        "restore",
        [
            ("session", Json::from("cooler")),
            ("path", Json::from(path_str.as_str())),
        ],
    ));
    assert_eq!(restored.get("replayed_ingests").unwrap().as_u64(), Some(1));
    assert_eq!(restored.get("replayed_refines").unwrap().as_u64(), Some(1));
    assert_eq!(
        restored.get("fingerprint_digest").unwrap().as_str(),
        Some(digest1.as_str()),
        "restored session replayed to a different pre-snapshot state"
    );

    client2.send_ok(&req(
        "ingest",
        [
            ("session", Json::from("cooler")),
            ("traces", encode_batch(&batch2)),
        ],
    ));
    let refined2b = client2.send_ok(&req("refine", [("session", Json::from("cooler"))]));
    assert_eq!(
        refined2b.get("fingerprint").unwrap().as_str(),
        Some(fp2.as_str()),
        "post-restore refinement diverged from the original session"
    );
    let model2b = client2.send_ok(&req(
        "model",
        [
            ("session", Json::from("cooler")),
            ("format", Json::from("dot")),
        ],
    ));
    assert_eq!(model2b.get("dot").unwrap().as_str(), Some(dot2.as_str()));

    // A tampered snapshot fails the integrity check instead of silently
    // learning from corrupt traces.
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("\"store_digest\":\"", "\"store_digest\":\"0", 1);
    std::fs::write(&path, tampered).unwrap();
    let rejected = client2.send(&req(
        "restore",
        [
            ("session", Json::from("tampered")),
            ("path", Json::from(path_str.as_str())),
        ],
    ));
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert!(
        rejected
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("integrity"),
        "got {}",
        rejected.render()
    );

    client2.send_ok(&req("shutdown", []));
    server2.join().expect("server thread").expect("server io");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn backpressure_rejects_and_deadlines_expire_without_blocking() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr);
    client.send_ok(&req(
        "open",
        [
            ("session", Json::from("busy")),
            ("system", Json::from(COOLER)),
            (
                "config",
                [("queue_capacity".to_string(), Json::from(1usize))]
                    .into_iter()
                    .collect(),
            ),
        ],
    ));

    // Occupy the actor: connection 1 parks in a 1.5s diagnostics sleep.
    let sleeper = thread::spawn(move || {
        let mut conn = Client::connect(addr);
        conn.send_ok(&req(
            "sleep",
            [("session", Json::from("busy")), ("ms", Json::from(1500u64))],
        ))
    });
    thread::sleep(Duration::from_millis(300));

    // Connection 2 fills the single queue slot and asks for a deadline far
    // shorter than the sleep: it gets a retriable timeout, not a hang.
    let queued = thread::spawn(move || {
        let mut conn = Client::connect(addr);
        conn.send(&req(
            "stats",
            [
                ("session", Json::from("busy")),
                ("timeout_ms", Json::from(100u64)),
            ],
        ))
    });
    thread::sleep(Duration::from_millis(300));

    // Connection 3 finds the queue full and is rejected immediately —
    // the accept loop and the connection stay fully responsive.
    let mut conn3 = Client::connect(addr);
    let rejected = conn3.send(&req("stats", [("session", Json::from("busy"))]));
    assert_eq!(rejected.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(rejected.get("retriable"), Some(&Json::Bool(true)));
    assert!(
        rejected
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("queue is full"),
        "got {}",
        rejected.render()
    );

    let timed_out = queued.join().expect("queued client");
    assert_eq!(timed_out.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(timed_out.get("retriable"), Some(&Json::Bool(true)));
    assert!(
        timed_out
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("deadline exceeded"),
        "got {}",
        timed_out.render()
    );
    let slept = sleeper.join().expect("sleeper client");
    assert_eq!(slept.get("slept_ms").unwrap().as_u64(), Some(1500));

    // The session drained its queue and still works.
    let stats = conn3.send_ok(&req("stats", [("session", Json::from("busy"))]));
    assert_eq!(stats.get("system").unwrap().as_str(), Some(COOLER));

    conn3.send_ok(&req("shutdown", []));
    server.join().expect("server thread").expect("server io");
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr);

    assert_eq!(
        client.send_ok(&req("ping", [])).get("pong"),
        Some(&Json::Bool(true))
    );

    let bad = client.send_raw("{not json");
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(bad.get("retriable"), Some(&Json::Bool(false)));

    let unknown = client.send(&req("teleport", []));
    assert!(unknown
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown op"));

    let missing = client.send(&req("refine", [("session", Json::from("ghost"))]));
    assert!(missing
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown session"));

    let bad_system = client.send(&req(
        "open",
        [
            ("session", Json::from("s")),
            ("system", Json::from("PerpetuumMobile")),
        ],
    ));
    assert!(bad_system
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown system"));

    client.send_ok(&req(
        "open",
        [("session", Json::from("s")), ("system", Json::from(COOLER))],
    ));
    let duplicate = client.send(&req(
        "open",
        [("session", Json::from("s")), ("system", Json::from(COOLER))],
    ));
    assert!(duplicate
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("already exists"));

    // Refine before any trace arrived, and model before any refinement.
    let empty = client.send(&req("refine", [("session", Json::from("s"))]));
    assert!(empty
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("at least one ingested trace"));
    let no_model = client.send(&req(
        "model",
        [("session", Json::from("s")), ("format", Json::from("dot"))],
    ));
    assert!(no_model
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("refine first"));

    // A malformed trace batch is rejected by the wire codec with context.
    let bad_rows = client.send(&req(
        "ingest",
        [
            ("session", Json::from("s")),
            ("traces", parse_json("[[[1,2,3,4,5,6,7,8,9]]]").unwrap()),
        ],
    ));
    assert!(bad_rows
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("columns"));

    client.send_ok(&req("shutdown", []));
    server.join().expect("server thread").expect("server io");
}
