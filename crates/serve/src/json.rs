//! The workspace's hand-rolled JSON reader and writer.
//!
//! Originally this parser lived in `amle-bench`'s perf-diff module; the
//! serving protocol speaks newline-delimited JSON over TCP, so the reader is
//! promoted here and shared (the bench crate re-exports it — there is one
//! parser in the workspace, not two drifting copies).
//!
//! The reader covers the full JSON grammar the suite documents and the
//! protocol use, including `\uXXXX` escapes with surrogate pairs: a valid
//! high/low pair decodes to its supplementary-plane scalar, and a *lone*
//! surrogate is a parse error rather than a silent pair of U+FFFD
//! replacement characters (the bug the old copy had — protocol payloads,
//! unlike suite output, are not guaranteed ASCII).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (counters in suite documents and
    /// protocol payloads are well below 2^53, so the conversion is exact).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is irrelevant to consumers.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Looks up a key when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a whole
    /// non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as a signed integer, if this is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Numbers that are
    /// exact integers render without a fractional part, so counters
    /// round-trip textually.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(key));
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}

impl FromIterator<(String, Json)> for Json {
    fn from_iter<T: IntoIterator<Item = (String, Json)>>(iter: T) -> Json {
        Json::Object(iter.into_iter().collect())
    }
}

impl FromIterator<Json> for Json {
    fn from_iter<T: IntoIterator<Item = Json>>(iter: T) -> Json {
        Json::Array(iter.into_iter().collect())
    }
}

/// Builds a JSON object from key/value pairs (a tiny literal helper).
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON document. Errors carry the byte offset of the problem.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing content at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape (the `\u` itself must
    /// already be consumed).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape".to_string())?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // A high surrogate must be followed by an
                                // escaped low surrogate; together they name
                                // one supplementary-plane scalar.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                        return Err(format!(
                                            "lone high surrogate \\u{code:04X} at byte {}",
                                            self.pos
                                        ));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(format!(
                                            "high surrogate \\u{code:04X} followed by \\u{low:04X}, \
                                             which is not a low surrogate"
                                        ));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar).ok_or_else(|| {
                                        format!("invalid surrogate pair \\u{code:04X}\\u{low:04X}")
                                    })?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!(
                                        "lone low surrogate \\u{code:04X} at byte {}",
                                        self.pos
                                    ));
                                }
                                _ => char::from_u32(code).ok_or_else(|| {
                                    format!("invalid \\u{code:04X} escape at byte {}", self.pos)
                                })?,
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8 sequence".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let json =
            parse_json("{\"a\": [1, -2.5e1, \"x\\\"y\\n\", true, null], \"b\": {}}").unwrap();
        let a = json.get("a").unwrap();
        match a {
            Json::Array(items) => {
                assert_eq!(items[0], Json::Number(1.0));
                assert_eq!(items[1], Json::Number(-25.0));
                assert_eq!(items[2], Json::String("x\"y\n".to_string()));
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[4], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(parse_json("[1 2]").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // U+1D11E MUSICAL SYMBOL G CLEF as an escaped surrogate pair.
        let json = parse_json("\"\\uD834\\uDD1E\"").unwrap();
        assert_eq!(json, Json::String("\u{1D11E}".to_string()));
        // Astral emoji round-trips through parse after a literal encode.
        let json = parse_json("\"\\uD83D\\uDE00!\"").unwrap();
        assert_eq!(json, Json::String("😀!".to_string()));
        // Basic-plane escapes are unchanged.
        let json = parse_json("\"\\u00e9\\u0041\"").unwrap();
        assert_eq!(json, Json::String("éA".to_string()));
    }

    #[test]
    fn lone_surrogates_are_errors_not_replacement_chars() {
        // The old parser produced two U+FFFD characters here.
        let err = parse_json("\"\\uD834\"").unwrap_err();
        assert!(err.contains("lone high surrogate"), "{err}");
        let err = parse_json("\"\\uDD1E\"").unwrap_err();
        assert!(err.contains("lone low surrogate"), "{err}");
        // High surrogate followed by a non-surrogate escape.
        let err = parse_json("\"\\uD834\\u0041\"").unwrap_err();
        assert!(err.contains("not a low surrogate"), "{err}");
        // High surrogate followed by a plain character.
        let err = parse_json("\"\\uD834x\"").unwrap_err();
        assert!(err.contains("lone high surrogate"), "{err}");
        // Truncated pair at end of input.
        assert!(parse_json("\"\\uD834\\u\"").is_err());
    }

    #[test]
    fn render_round_trips() {
        let doc = obj([
            ("name", Json::from("amle\n\"quoted\"")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Array(vec![Json::from(1i64), Json::from(-3i64)]),
            ),
            ("emoji", Json::from("😀")),
        ]);
        let text = doc.render();
        assert_eq!(parse_json(&text).unwrap(), doc);
        // Integers render without a fractional part.
        assert!(text.contains("\"count\":42"));
        assert!(!text.contains("42.0"));
        // Newline-delimited protocol frames must stay on one line.
        assert!(!text.contains('\n'));
    }

    #[test]
    fn accessors() {
        let doc = parse_json("{\"n\": 3, \"s\": \"x\", \"b\": false, \"a\": [1]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(parse_json("2.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-2").unwrap().as_u64(), None);
        assert_eq!(parse_json("-2").unwrap().as_i64(), Some(-2));
    }
}
