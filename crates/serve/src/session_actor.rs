//! The per-session actor: a thread owning one resident [`Session`].
//!
//! A protocol session's learning state borrows the `System` it learns
//! (`Session<'a, _>`), so it cannot be parked in a shared registry; instead
//! each session runs as an *actor* — a thread that builds the system on its
//! own stack and processes commands from a **bounded** queue. The bound is
//! the backpressure seam: when the queue is full, the serving layer rejects
//! the request with a retriable error instead of blocking the accept loop
//! behind a long refinement.
//!
//! Dropping every sender of the queue is the graceful-shutdown signal: the
//! channel delivers all buffered commands before disconnecting, so an actor
//! drains in-flight work (refinements included) and then exits.

use crate::json::{obj, Json};
use amle_automaton::{display_expr, Nfa};
use amle_benchmarks::{benchmark_by_name, Benchmark};
use amle_core::{
    fingerprint_digest, ActiveLearnerConfig, InternerStats, OracleKind, ParallelConfig, Session,
    SessionStats,
};
use amle_learner::{HistoryLearner, KTailsLearner, LearnerKind, LstarLearner, SatDfaLearner};
use amle_system::wire;
use amle_system::System;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Default bound of a session's command queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default per-request deadline in milliseconds.
pub const DEFAULT_REQUEST_TIMEOUT_MS: u64 = 120_000;

/// The configuration of one protocol session, parsed from the `open` verb's
/// `config` object (and embedded verbatim in snapshot files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Benchmark name of the system under learning.
    pub system: String,
    /// k-induction bound; `None` uses the benchmark's own `k`.
    pub k: Option<usize>,
    /// Iteration budget per `refine` call.
    pub max_iterations: usize,
    /// Spurious-counterexample bound per condition.
    pub max_spurious_rounds: usize,
    /// Condition-engine worker count.
    pub workers: usize,
    /// Learner kind name (`history|ktails|satdfa|lstar`).
    pub learner: String,
    /// Condition-oracle engine.
    pub engine: OracleKind,
    /// Whether the cross-iteration verdict cache is on.
    pub verdict_cache: bool,
    /// Command-queue bound (backpressure threshold).
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds.
    pub request_timeout_ms: u64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            system: String::new(),
            k: None,
            max_iterations: 25,
            max_spurious_rounds: 10,
            workers: 1,
            learner: "history".to_string(),
            engine: OracleKind::default(),
            verdict_cache: true,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            request_timeout_ms: DEFAULT_REQUEST_TIMEOUT_MS,
        }
    }
}

impl SessionSpec {
    /// Parses a spec from the `open` verb: the system name plus an optional
    /// `config` object.
    pub fn from_request(system: String, config: Option<&Json>) -> Result<SessionSpec, String> {
        let mut spec = SessionSpec {
            system,
            ..SessionSpec::default()
        };
        if benchmark_by_name(&spec.system).is_none() {
            return Err(format!("unknown system `{}`", spec.system));
        }
        let Some(config) = config else {
            return Ok(spec);
        };
        let field_usize = |key: &str| -> Result<Option<usize>, String> {
            match config.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
            }
        };
        spec.k = field_usize("k")?;
        if let Some(n) = field_usize("max_iterations")? {
            spec.max_iterations = n.max(1);
        }
        if let Some(n) = field_usize("max_spurious_rounds")? {
            spec.max_spurious_rounds = n.max(1);
        }
        if let Some(n) = field_usize("workers")? {
            spec.workers = n.max(1);
        }
        if let Some(n) = field_usize("queue_capacity")? {
            spec.queue_capacity = n.clamp(1, 4096);
        }
        if let Some(n) = field_usize("request_timeout_ms")? {
            spec.request_timeout_ms = (n as u64).max(1);
        }
        if let Some(v) = config.get("learner") {
            let name = v.as_str().ok_or("`learner` must be a string")?;
            make_learner(name)?; // validate eagerly
            spec.learner = name.to_string();
        }
        if let Some(v) = config.get("engine") {
            let name = v.as_str().ok_or("`engine` must be a string")?;
            spec.engine = OracleKind::from_name(name).ok_or_else(|| {
                format!("unknown engine `{name}` (kinduction|explicit|portfolio)")
            })?;
        }
        if let Some(v) = config.get("no_cache") {
            spec.verdict_cache = !v.as_bool().ok_or("`no_cache` must be a boolean")?;
        }
        Ok(spec)
    }

    /// The spec as a JSON object (the snapshot file's `config` field).
    pub fn to_json(&self) -> Json {
        obj([
            ("system", Json::from(self.system.as_str())),
            ("k", self.k.map(Json::from).unwrap_or(Json::Null)),
            ("max_iterations", Json::from(self.max_iterations)),
            ("max_spurious_rounds", Json::from(self.max_spurious_rounds)),
            ("workers", Json::from(self.workers)),
            ("learner", Json::from(self.learner.as_str())),
            ("engine", Json::from(self.engine.name())),
            ("no_cache", Json::from(!self.verdict_cache)),
            ("queue_capacity", Json::from(self.queue_capacity)),
            ("request_timeout_ms", Json::from(self.request_timeout_ms)),
        ])
    }

    /// Parses a spec back out of a snapshot file's `config` object.
    pub fn from_json(config: &Json) -> Result<SessionSpec, String> {
        let system = config
            .get("system")
            .and_then(Json::as_str)
            .ok_or("snapshot config lacks `system`")?
            .to_string();
        SessionSpec::from_request(system, Some(config))
    }

    fn learner_config(&self, benchmark: &Benchmark) -> ActiveLearnerConfig {
        ActiveLearnerConfig {
            observables: Some(benchmark.observables.clone()),
            k: self.k.unwrap_or(benchmark.k),
            max_iterations: self.max_iterations,
            max_spurious_rounds: self.max_spurious_rounds,
            parallel: ParallelConfig::with_workers(self.workers),
            oracle: amle_core::OracleConfig {
                engine: self.engine,
                verdict_cache: self.verdict_cache,
                ..amle_core::OracleConfig::default()
            },
            ..ActiveLearnerConfig::default()
        }
    }
}

/// Builds a fresh learner of the named kind.
pub fn make_learner(name: &str) -> Result<LearnerKind, String> {
    match name {
        "history" => Ok(LearnerKind::History(HistoryLearner::default())),
        "ktails" => Ok(LearnerKind::KTails(KTailsLearner::new(1))),
        "satdfa" => Ok(LearnerKind::SatDfa(SatDfaLearner::default())),
        "lstar" => Ok(LearnerKind::Lstar(LstarLearner::default())),
        other => Err(format!(
            "unknown learner `{other}` (history|ktails|satdfa|lstar)"
        )),
    }
}

/// One replayable session operation (the snapshot file's event log).
#[derive(Debug, Clone)]
pub enum ReplayOp {
    /// A trace batch, as raw wire rows.
    Ingest(Vec<Vec<Vec<i64>>>),
    /// A completed refinement.
    Refine,
}

/// A subscriber's write half: events interleave with the connection's own
/// responses, so every write goes through the shared mutex.
pub type EventSink = Arc<Mutex<TcpStream>>;

/// A command delivered to a session actor. Every variant carries a reply
/// channel; the serving layer waits on it with the request's deadline.
pub enum Command {
    /// Fold a batch of wire-encoded traces into the store.
    Ingest {
        /// The batch, one row matrix per trace.
        traces: Vec<Vec<Vec<i64>>>,
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Run the refinement loop over the current store.
    Refine {
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Render the current model.
    Model {
        /// `"dot"` or `"json"`.
        format: String,
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Report the session's cumulative counters.
    Stats {
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Serialize the session's replay log to a file.
    Snapshot {
        /// Destination path.
        path: String,
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Attach a model-delta subscriber.
    Subscribe {
        /// The subscriber connection's write half.
        sink: EventSink,
        /// Reply channel.
        reply: Sender<Json>,
    },
    /// Diagnostics: hold the actor busy for a bounded interval so tests can
    /// fill the command queue deterministically.
    Sleep {
        /// Busy interval in milliseconds (capped at 5000).
        ms: u64,
        /// Reply channel.
        reply: Sender<Json>,
    },
}

/// The serving layer's handle to a running actor.
pub struct SessionHandle {
    /// The bounded command queue. `try_send` full ⇒ backpressure.
    pub tx: SyncSender<Command>,
    /// The actor thread; joined on `close` and on daemon shutdown.
    pub join: JoinHandle<()>,
    /// The session's spec (for `stats` and error messages).
    pub spec: SessionSpec,
}

/// What a successfully started actor reports back after replay.
#[derive(Debug, Clone)]
pub struct ReadyInfo {
    /// Replayed ingest batches.
    pub replayed_ingests: usize,
    /// Replayed refinements.
    pub replayed_refines: usize,
    /// Digest of the latest refinement's fingerprint, if any.
    pub last_fingerprint_digest: Option<String>,
}

/// Spawns a session actor, replaying `replay` first (empty for a fresh
/// `open`) and returning its [`ReadyInfo`] replay summary. Blocks until the
/// actor finished replaying; a replay failure or a store-digest mismatch
/// tears the actor down and is returned as `Err`.
pub fn spawn_session(
    name: String,
    spec: SessionSpec,
    replay: Vec<ReplayOp>,
    expected_store_digest: Option<String>,
) -> Result<(SessionHandle, ReadyInfo), String> {
    let benchmark = benchmark_by_name(&spec.system)
        .ok_or_else(|| format!("unknown system `{}`", spec.system))?;
    make_learner(&spec.learner)?;
    let (tx, rx) = mpsc::sync_channel(spec.queue_capacity);
    let (ready_tx, ready_rx) = mpsc::channel();
    let actor_spec = spec.clone();
    let join = std::thread::Builder::new()
        .name(format!("session-{name}"))
        .spawn(move || {
            actor_main(
                name,
                actor_spec,
                benchmark,
                replay,
                expected_store_digest,
                rx,
                ready_tx,
            )
        })
        .map_err(|e| format!("cannot spawn session thread: {e}"))?;
    match ready_rx.recv() {
        Ok(Ok(info)) => Ok((SessionHandle { tx, join, spec }, info)),
        Ok(Err(reason)) => {
            drop(tx);
            let _ = join.join();
            Err(reason)
        }
        Err(_) => {
            let _ = join.join();
            Err("session actor died during startup".to_string())
        }
    }
}

/// State the actor keeps besides the [`Session`] itself.
struct ActorState {
    name: String,
    ops_log: Vec<ReplayOp>,
    subscribers: Vec<EventSink>,
    last_fingerprint: Option<String>,
    last_model: Option<Nfa>,
}

fn actor_main(
    name: String,
    spec: SessionSpec,
    benchmark: Benchmark,
    replay: Vec<ReplayOp>,
    expected_store_digest: Option<String>,
    rx: Receiver<Command>,
    ready: Sender<Result<ReadyInfo, String>>,
) {
    // The system lives on the actor's stack: `Session` borrows it, which is
    // why sessions are threads rather than entries in a shared map.
    let system = benchmark.system.clone();
    let config = spec.learner_config(&benchmark);
    let learner = match make_learner(&spec.learner) {
        Ok(l) => l,
        Err(reason) => {
            let _ = ready.send(Err(reason));
            return;
        }
    };
    let mut session = Session::new(&system, learner, config);
    let mut state = ActorState {
        name,
        ops_log: Vec::new(),
        subscribers: Vec::new(),
        last_fingerprint: None,
        last_model: None,
    };

    // Replay the snapshot's event log: same system, same config, same
    // batches in the same order ⇒ the deterministic pipeline reproduces the
    // exact pre-snapshot state (store contents, learner state, verdict
    // cache), which the store digest then witnesses.
    let mut info = ReadyInfo {
        replayed_ingests: 0,
        replayed_refines: 0,
        last_fingerprint_digest: None,
    };
    for op in replay {
        match op {
            ReplayOp::Ingest(traces) => {
                let response = do_ingest(&mut session, &mut state, &system, traces);
                if response.get("ok") != Some(&Json::Bool(true)) {
                    let reason = response
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("replay failed")
                        .to_string();
                    let _ = ready.send(Err(format!("replay ingest failed: {reason}")));
                    return;
                }
                info.replayed_ingests += 1;
            }
            ReplayOp::Refine => {
                let response = do_refine(&mut session, &mut state, &system);
                if response.get("ok") != Some(&Json::Bool(true)) {
                    let reason = response
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("replay failed")
                        .to_string();
                    let _ = ready.send(Err(format!("replay refine failed: {reason}")));
                    return;
                }
                info.replayed_refines += 1;
            }
        }
    }
    if let Some(expected) = expected_store_digest {
        let actual = wire::rows_digest(&wire::store_rows(session.store()));
        if actual != expected {
            let _ = ready.send(Err(format!(
                "snapshot integrity check failed: store digest {actual} != recorded {expected}"
            )));
            return;
        }
    }
    info.last_fingerprint_digest = state.last_fingerprint.as_deref().map(fingerprint_digest);
    let _ = ready.send(Ok(info));

    // The command loop. `recv` returns `Err` only once every sender is gone
    // *and* the buffered commands are drained — that is the graceful
    // shutdown contract.
    while let Ok(command) = rx.recv() {
        match command {
            Command::Ingest { traces, reply } => {
                let response = do_ingest(&mut session, &mut state, &system, traces);
                let _ = reply.send(response);
            }
            Command::Refine { reply } => {
                let response = do_refine(&mut session, &mut state, &system);
                let _ = reply.send(response);
            }
            Command::Model { format, reply } => {
                let _ = reply.send(do_model(&state, &system, &format));
            }
            Command::Stats { reply } => {
                let _ = reply.send(do_stats(&session, &state, &spec));
            }
            Command::Snapshot { path, reply } => {
                let _ = reply.send(do_snapshot(&session, &state, &spec, &path));
            }
            Command::Subscribe { sink, reply } => {
                state.subscribers.push(sink);
                let _ = reply.send(obj([
                    ("ok", Json::Bool(true)),
                    ("subscribed", Json::from(state.name.as_str())),
                    (
                        "fingerprint_digest",
                        state
                            .last_fingerprint
                            .as_deref()
                            .map(|fp| Json::from(fingerprint_digest(fp)))
                            .unwrap_or(Json::Null),
                    ),
                ]));
            }
            Command::Sleep { ms, reply } => {
                std::thread::sleep(std::time::Duration::from_millis(ms.min(5000)));
                let _ = reply.send(obj([
                    ("ok", Json::Bool(true)),
                    ("slept_ms", Json::from(ms)),
                ]));
            }
        }
    }
}

fn error_response(message: String, retriable: bool) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from(message)),
        ("retriable", Json::Bool(retriable)),
    ])
}

fn do_ingest(
    session: &mut Session<'_, LearnerKind>,
    state: &mut ActorState,
    system: &System,
    traces: Vec<Vec<Vec<i64>>>,
) -> Json {
    let mut decoded = Vec::with_capacity(traces.len());
    for (i, rows) in traces.iter().enumerate() {
        match wire::trace_from_rows(system.vars(), rows) {
            Ok(trace) if !trace.is_empty() => decoded.push(trace),
            Ok(_) => return error_response(format!("trace {i} is empty"), false),
            Err(e) => return error_response(format!("trace {i}: {e}"), false),
        }
    }
    let outcome = session.ingest(decoded);
    state.ops_log.push(ReplayOp::Ingest(traces));
    obj([
        ("ok", Json::Bool(true)),
        ("accepted", Json::from(outcome.accepted)),
        ("duplicates", Json::from(outcome.duplicates)),
        ("traces", Json::from(session.trace_count())),
    ])
}

fn do_refine(
    session: &mut Session<'_, LearnerKind>,
    state: &mut ActorState,
    system: &System,
) -> Json {
    let report = match session.refine() {
        Ok(report) => report,
        Err(e) => return error_response(e.to_string(), false),
    };
    let fingerprint = report.semantic_fingerprint(system.vars());
    let digest = fingerprint_digest(&fingerprint);
    state.ops_log.push(ReplayOp::Refine);
    state.last_fingerprint = Some(fingerprint.clone());
    state.last_model = Some(report.abstraction.clone());

    // Push the model delta to every subscriber; a dead sink is dropped.
    let event = obj([
        ("event", Json::from("refinement")),
        ("session", Json::from(state.name.as_str())),
        ("alpha", Json::Number(report.alpha)),
        ("converged", Json::Bool(report.converged)),
        ("iterations", Json::from(report.iterations)),
        ("fingerprint_digest", Json::from(digest.as_str())),
        ("fingerprint", Json::from(fingerprint.as_str())),
        ("dot", Json::from(report.abstraction.to_dot(system.vars()))),
    ])
    .render();
    state.subscribers.retain(|sink| {
        let Ok(mut stream) = sink.lock() else {
            return false;
        };
        stream
            .write_all(event.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_ok()
    });

    obj([
        ("ok", Json::Bool(true)),
        ("alpha", Json::Number(report.alpha)),
        ("converged", Json::Bool(report.converged)),
        ("iterations", Json::from(report.iterations)),
        ("states", Json::from(report.abstraction.num_states())),
        (
            "transitions",
            Json::from(report.abstraction.num_transitions()),
        ),
        ("traces", Json::from(session.trace_count())),
        ("fingerprint", Json::from(fingerprint)),
        ("fingerprint_digest", Json::from(digest)),
    ])
}

fn do_model(state: &ActorState, system: &System, format: &str) -> Json {
    let Some(model) = &state.last_model else {
        return error_response("no model yet: refine first".to_string(), false);
    };
    match format {
        "dot" => obj([
            ("ok", Json::Bool(true)),
            ("format", Json::from("dot")),
            ("dot", Json::from(model.to_dot(system.vars()))),
        ]),
        "json" => {
            let transitions: Json = model
                .transitions()
                .iter()
                .map(|t| {
                    obj([
                        ("from", Json::from(t.from.index())),
                        ("to", Json::from(t.to.index())),
                        ("guard", Json::from(display_expr(&t.guard, system.vars()))),
                    ])
                })
                .collect();
            let initial: Json = model
                .initial_states()
                .map(|s| Json::from(s.index()))
                .collect();
            obj([
                ("ok", Json::Bool(true)),
                ("format", Json::from("json")),
                ("states", Json::from(model.num_states())),
                ("initial", initial),
                ("transitions", transitions),
            ])
        }
        other => error_response(format!("unknown model format `{other}` (dot|json)"), false),
    }
}

fn stats_json(stats: &SessionStats) -> [(&'static str, Json); 3] {
    [
        (
            "store",
            obj([
                ("traces", Json::from(stats.store.traces)),
                (
                    "unique_observations",
                    Json::from(stats.store.unique_observations),
                ),
                ("segments", Json::from(stats.store.segments)),
                (
                    "stored_observations",
                    Json::from(stats.store.stored_observations),
                ),
                (
                    "shared_observations",
                    Json::from(stats.store.shared_observations),
                ),
            ]),
        ),
        (
            "verdict_cache",
            obj([
                ("hits", Json::from(stats.verdict_cache.hits)),
                ("misses", Json::from(stats.verdict_cache.misses)),
                ("entries", Json::from(stats.verdict_cache.entries)),
            ]),
        ),
        (
            "checker",
            obj([
                ("sat_queries", Json::from(stats.checker.sat_queries)),
                (
                    "condition_checks",
                    Json::from(stats.checker.condition_checks),
                ),
                ("spurious_checks", Json::from(stats.checker.spurious_checks)),
                (
                    "kinduction_queries",
                    Json::from(stats.checker.kinduction_queries),
                ),
                (
                    "explicit_queries",
                    Json::from(stats.checker.explicit_queries),
                ),
                ("solve_calls", Json::from(stats.checker.solver.solve_calls)),
                ("conflicts", Json::from(stats.checker.solver.conflicts)),
                (
                    "propagations",
                    Json::from(stats.checker.solver.propagations),
                ),
            ]),
        ),
    ]
}

fn do_stats(session: &Session<'_, LearnerKind>, state: &ActorState, spec: &SessionSpec) -> Json {
    let stats = session.stats();
    let [store, cache, checker] = stats_json(&stats);
    // The expression interner is process-global and never shrinks; a
    // resident daemon must watch it as a gauge, not per-session deltas.
    let interner = InternerStats::snapshot();
    obj([
        ("ok", Json::Bool(true)),
        ("session", Json::from(state.name.as_str())),
        ("system", Json::from(spec.system.as_str())),
        ("workers", Json::from(spec.workers)),
        ("engine", Json::from(spec.engine.name())),
        ("learner", Json::from(spec.learner.as_str())),
        ("ingested_traces", Json::from(stats.ingested_traces)),
        ("duplicate_traces", Json::from(stats.duplicate_traces)),
        ("refinements", Json::from(stats.refinements)),
        ("subscribers", Json::from(state.subscribers.len())),
        store,
        cache,
        checker,
        (
            "interner_gauge",
            obj([
                ("nodes_interned", Json::from(interner.nodes_interned)),
                ("hits", Json::from(interner.hits)),
                (
                    "canonical_rewrites",
                    Json::from(interner.canonical_rewrites),
                ),
            ]),
        ),
    ])
}

/// Snapshot file schema version.
pub const SNAPSHOT_SCHEMA: u64 = 1;

/// Snapshot file `kind` marker.
pub const SNAPSHOT_KIND: &str = "amle-session-snapshot";

fn do_snapshot(
    session: &Session<'_, LearnerKind>,
    state: &ActorState,
    spec: &SessionSpec,
    path: &str,
) -> Json {
    let ops: Json = state
        .ops_log
        .iter()
        .map(|op| match op {
            ReplayOp::Ingest(traces) => {
                let traces: Json = traces
                    .iter()
                    .map(|rows| -> Json {
                        rows.iter()
                            .map(|row| -> Json { row.iter().map(|v| Json::from(*v)).collect() })
                            .collect()
                    })
                    .collect();
                obj([("op", Json::from("ingest")), ("traces", traces)])
            }
            ReplayOp::Refine => obj([("op", Json::from("refine"))]),
        })
        .collect();
    let store_digest = wire::rows_digest(&wire::store_rows(session.store()));
    let doc = obj([
        ("schema", Json::from(SNAPSHOT_SCHEMA)),
        ("kind", Json::from(SNAPSHOT_KIND)),
        ("config", spec.to_json()),
        ("store_digest", Json::from(store_digest.as_str())),
        (
            "last_fingerprint_digest",
            state
                .last_fingerprint
                .as_deref()
                .map(|fp| Json::from(fingerprint_digest(fp)))
                .unwrap_or(Json::Null),
        ),
        ("ops", ops),
    ]);
    match std::fs::write(path, doc.render() + "\n") {
        Ok(()) => obj([
            ("ok", Json::Bool(true)),
            ("path", Json::from(path)),
            ("store_digest", Json::from(store_digest)),
            ("ops", Json::from(state.ops_log.len())),
        ]),
        Err(e) => error_response(format!("cannot write snapshot to {path}: {e}"), false),
    }
}

/// Parses a snapshot file into its spec, replay log and recorded store
/// digest.
pub fn parse_snapshot(text: &str) -> Result<(SessionSpec, Vec<ReplayOp>, String), String> {
    let doc = crate::json::parse_json(text)?;
    if doc.get("kind").and_then(Json::as_str) != Some(SNAPSHOT_KIND) {
        return Err("not an amle session snapshot".to_string());
    }
    let schema = doc.get("schema").and_then(Json::as_u64).unwrap_or(0);
    if schema != SNAPSHOT_SCHEMA {
        return Err(format!("unsupported snapshot schema {schema}"));
    }
    let spec = SessionSpec::from_json(
        doc.get("config")
            .ok_or("snapshot lacks a `config` object")?,
    )?;
    let store_digest = doc
        .get("store_digest")
        .and_then(Json::as_str)
        .ok_or("snapshot lacks `store_digest`")?
        .to_string();
    let ops_json = doc
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("snapshot lacks an `ops` array")?;
    let mut ops = Vec::with_capacity(ops_json.len());
    for (i, op) in ops_json.iter().enumerate() {
        match op.get("op").and_then(Json::as_str) {
            Some("ingest") => {
                let traces = op
                    .get("traces")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("ops[{i}]: ingest lacks `traces`"))?;
                ops.push(ReplayOp::Ingest(decode_trace_batch(traces)?));
            }
            Some("refine") => ops.push(ReplayOp::Refine),
            other => return Err(format!("ops[{i}]: unknown op {other:?}")),
        }
    }
    Ok((spec, ops, store_digest))
}

/// Decodes the protocol's trace-batch shape (array of row matrices of
/// integers) into wire rows.
pub fn decode_trace_batch(traces: &[Json]) -> Result<Vec<Vec<Vec<i64>>>, String> {
    let mut batch = Vec::with_capacity(traces.len());
    for (t, trace) in traces.iter().enumerate() {
        let rows = trace
            .as_array()
            .ok_or_else(|| format!("trace {t} is not an array of rows"))?;
        let mut matrix = Vec::with_capacity(rows.len());
        for (r, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| format!("trace {t} row {r} is not an array"))?;
            let mut values = Vec::with_capacity(cells.len());
            for (c, cell) in cells.iter().enumerate() {
                values
                    .push(cell.as_i64().ok_or_else(|| {
                        format!("trace {t} row {r} column {c} is not an integer")
                    })?);
            }
            matrix.push(values);
        }
        batch.push(matrix);
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SessionSpec {
            system: "HomeClimateControlCooler".to_string(),
            k: Some(4),
            max_iterations: 9,
            max_spurious_rounds: 3,
            workers: 2,
            learner: "ktails".to_string(),
            engine: OracleKind::Portfolio,
            verdict_cache: false,
            queue_capacity: 7,
            request_timeout_ms: 1234,
        };
        let parsed = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn spec_rejects_unknown_names() {
        let err = SessionSpec::from_request("NoSuchSystem".to_string(), None).unwrap_err();
        assert!(err.contains("unknown system"));
        let config = obj([("learner", Json::from("telepathy"))]);
        let err = SessionSpec::from_request("HomeClimateControlCooler".to_string(), Some(&config))
            .unwrap_err();
        assert!(err.contains("unknown learner"));
        let config = obj([("engine", Json::from("oracle-of-delphi"))]);
        let err = SessionSpec::from_request("HomeClimateControlCooler".to_string(), Some(&config))
            .unwrap_err();
        assert!(err.contains("unknown engine"));
    }

    #[test]
    fn trace_batch_decoding_validates_shape() {
        let batch = crate::json::parse_json("[[[1,0],[2,1]]]").unwrap();
        let rows = decode_trace_batch(batch.as_array().unwrap()).unwrap();
        assert_eq!(rows, vec![vec![vec![1, 0], vec![2, 1]]]);
        let bad = crate::json::parse_json("[[[1,0.5]]]").unwrap();
        assert!(decode_trace_batch(bad.as_array().unwrap())
            .unwrap_err()
            .contains("not an integer"));
        let bad = crate::json::parse_json("[1]").unwrap();
        assert!(decode_trace_batch(bad.as_array().unwrap())
            .unwrap_err()
            .contains("not an array of rows"));
    }
}
