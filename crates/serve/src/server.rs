//! The TCP serving shell: accept loop, session registry, graceful shutdown.
//!
//! Protocol: newline-delimited JSON. Each request is one line, one object
//! with an `"op"` field; each response is one line, `{"ok":true,...}` or
//! `{"ok":false,"error":...,"retriable":...}`. Connections that subscribed
//! to a session additionally receive `{"event":"refinement",...}` lines
//! interleaved between responses (all writes to a connection go through one
//! mutex, so lines never shear).
//!
//! Threading model: one thread per connection (blocking reads), one *actor*
//! thread per session (see [`crate::session_actor`]). Connection threads
//! never run learning work — they decode requests, `try_send` into the
//! session's bounded queue (full queue ⇒ immediate retriable rejection, the
//! accept loop is never blocked by a slow session), and wait for the reply
//! with the request's deadline.
//!
//! Graceful shutdown (the `shutdown` verb): stop accepting, drop every
//! session's queue sender and join the actors — the queue delivers buffered
//! commands before disconnecting, so in-flight refinements drain — then
//! shut down the connection streams and join the connection threads.

use crate::json::{obj, parse_json, Json};
use crate::session_actor::{
    decode_trace_batch, parse_snapshot, spawn_session, Command, EventSink, SessionHandle,
    SessionSpec,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared state of one daemon instance.
struct Shared {
    sessions: Mutex<HashMap<String, SessionHandle>>,
    connections: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
    shutting_down: AtomicBool,
    local_addr: SocketAddr,
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                sessions: Mutex::new(HashMap::new()),
                connections: Mutex::new(Vec::new()),
                shutting_down: AtomicBool::new(false),
                local_addr,
            }),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Runs the accept loop until a `shutdown` request arrives, then drains
    /// every session and connection before returning.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let peer = stream
                .try_clone()
                .expect("cloning an accepted stream cannot fail");
            let shared = Arc::clone(&self.shared);
            let join = std::thread::spawn(move || handle_connection(stream, shared));
            self.shared
                .connections
                .lock()
                .expect("connection registry poisoned")
                .push((peer, join));
        }

        // Drain sessions first: dropping the queue senders lets each actor
        // finish its buffered commands (replies still reach any waiting
        // connection threads) and exit.
        let sessions = std::mem::take(
            &mut *self
                .shared
                .sessions
                .lock()
                .expect("session registry poisoned"),
        );
        for (_, handle) in sessions {
            drop(handle.tx);
            let _ = handle.join.join();
        }

        // Then sever the connections: reads unblock with EOF, threads exit.
        let connections = std::mem::take(
            &mut *self
                .shared
                .connections
                .lock()
                .expect("connection registry poisoned"),
        );
        for (stream, join) in connections {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = join.join();
        }
        Ok(())
    }
}

fn error_response(message: impl Into<String>, retriable: bool) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from(message.into())),
        ("retriable", Json::Bool(retriable)),
    ])
}

fn write_line(writer: &EventSink, line: &str) -> bool {
    let Ok(mut stream) = writer.lock() else {
        return false;
    };
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let writer: EventSink = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match process_request(&line, &shared, &writer) {
            Some(response) => {
                if !write_line(&writer, &response.render()) {
                    break;
                }
            }
            // The handler already wrote the reply (shutdown does, so the
            // line is on the wire before the drain severs this stream).
            None => break,
        }
    }
}

/// Dispatches one request. Returns `Some(response)` for the caller to write,
/// or `None` when the handler wrote the reply itself and the connection loop
/// should end.
fn process_request(line: &str, shared: &Arc<Shared>, writer: &EventSink) -> Option<Json> {
    let request = match parse_json(line) {
        Ok(request) => request,
        Err(e) => return Some(error_response(format!("malformed request: {e}"), false)),
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return Some(error_response("request lacks an `op` field", false));
    };
    Some(match op {
        "ping" => obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        "open" => handle_open(&request, shared),
        "restore" => handle_restore(&request, shared),
        "close" => handle_close(&request, shared),
        "shutdown" => return handle_shutdown(shared, writer),
        "ingest" | "refine" | "model" | "stats" | "snapshot" | "subscribe" | "sleep" => {
            handle_session_verb(op, &request, shared, writer)
        }
        other => error_response(format!("unknown op `{other}`"), false),
    })
}

fn session_name(request: &Json) -> Result<String, Json> {
    request
        .get("session")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| error_response("request lacks a `session` field", false))
}

/// Registers a freshly spawned session under `name`, tearing the actor down
/// again if the name was taken concurrently.
fn register(shared: &Arc<Shared>, name: &str, handle: SessionHandle) -> Result<(), Json> {
    let mut sessions = shared.sessions.lock().expect("session registry poisoned");
    if sessions.contains_key(name) {
        drop(sessions);
        drop(handle.tx);
        let _ = handle.join.join();
        return Err(error_response(
            format!("session `{name}` already exists"),
            false,
        ));
    }
    sessions.insert(name.to_string(), handle);
    Ok(())
}

fn handle_open(request: &Json, shared: &Arc<Shared>) -> Json {
    let name = match session_name(request) {
        Ok(name) => name,
        Err(response) => return response,
    };
    if shared
        .sessions
        .lock()
        .expect("session registry poisoned")
        .contains_key(&name)
    {
        return error_response(format!("session `{name}` already exists"), false);
    }
    let Some(system) = request.get("system").and_then(Json::as_str) else {
        return error_response("open lacks a `system` field", false);
    };
    let spec = match SessionSpec::from_request(system.to_string(), request.get("config")) {
        Ok(spec) => spec,
        Err(e) => return error_response(e, false),
    };
    let (handle, _info) = match spawn_session(name.clone(), spec, Vec::new(), None) {
        Ok(started) => started,
        Err(e) => return error_response(e, false),
    };
    let vars: Json = {
        let benchmark = amle_benchmarks::benchmark_by_name(&handle.spec.system)
            .expect("spec validated the system name");
        benchmark
            .system
            .vars()
            .iter()
            .map(|(_, info)| Json::from(info.name.as_str()))
            .collect()
    };
    let response = obj([
        ("ok", Json::Bool(true)),
        ("session", Json::from(name.as_str())),
        ("system", Json::from(handle.spec.system.as_str())),
        ("workers", Json::from(handle.spec.workers)),
        ("queue_capacity", Json::from(handle.spec.queue_capacity)),
        ("vars", vars),
    ]);
    match register(shared, &name, handle) {
        Ok(()) => response,
        Err(response) => response,
    }
}

fn handle_restore(request: &Json, shared: &Arc<Shared>) -> Json {
    let name = match session_name(request) {
        Ok(name) => name,
        Err(response) => return response,
    };
    let Some(path) = request.get("path").and_then(Json::as_str) else {
        return error_response("restore lacks a `path` field", false);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return error_response(format!("cannot read snapshot {path}: {e}"), false),
    };
    let (spec, replay, store_digest) = match parse_snapshot(&text) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(format!("bad snapshot {path}: {e}"), false),
    };
    let (handle, info) = match spawn_session(name.clone(), spec, replay, Some(store_digest)) {
        Ok(started) => started,
        Err(e) => return error_response(e, false),
    };
    let response = obj([
        ("ok", Json::Bool(true)),
        ("session", Json::from(name.as_str())),
        ("system", Json::from(handle.spec.system.as_str())),
        ("replayed_ingests", Json::from(info.replayed_ingests)),
        ("replayed_refines", Json::from(info.replayed_refines)),
        (
            "fingerprint_digest",
            info.last_fingerprint_digest
                .as_deref()
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
    ]);
    match register(shared, &name, handle) {
        Ok(()) => response,
        Err(response) => response,
    }
}

fn handle_close(request: &Json, shared: &Arc<Shared>) -> Json {
    let name = match session_name(request) {
        Ok(name) => name,
        Err(response) => return response,
    };
    let handle = shared
        .sessions
        .lock()
        .expect("session registry poisoned")
        .remove(&name);
    match handle {
        Some(handle) => {
            // Dropping the sender drains the queue; join waits for it.
            drop(handle.tx);
            let _ = handle.join.join();
            obj([
                ("ok", Json::Bool(true)),
                ("closed", Json::from(name.as_str())),
            ])
        }
        None => error_response(format!("unknown session `{name}`"), false),
    }
}

fn handle_shutdown(shared: &Arc<Shared>, writer: &EventSink) -> Option<Json> {
    // Write the reply *before* waking the accept loop: the drain severs this
    // very connection, so the line must already be on the wire or the client
    // reads EOF instead of the acknowledgement.
    let response = obj([
        ("ok", Json::Bool(true)),
        ("shutting_down", Json::Bool(true)),
    ]);
    let _ = write_line(writer, &response.render());
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Unblock the accept loop; it sees the flag and starts the drain. The
    // dummy connection is accepted and immediately discarded.
    let _ = TcpStream::connect(shared.local_addr);
    None
}

fn handle_session_verb(op: &str, request: &Json, shared: &Arc<Shared>, writer: &EventSink) -> Json {
    let name = match session_name(request) {
        Ok(name) => name,
        Err(response) => return response,
    };
    // Clone the queue sender out of the registry and release the lock before
    // waiting on anything — registry access must stay O(lookup).
    let (tx, timeout_default) = {
        let sessions = shared.sessions.lock().expect("session registry poisoned");
        match sessions.get(&name) {
            Some(handle) => (handle.tx.clone(), handle.spec.request_timeout_ms),
            None => return error_response(format!("unknown session `{name}`"), false),
        }
    };
    let timeout_ms = request
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .unwrap_or(timeout_default)
        .max(1);

    let (reply_tx, reply_rx) = mpsc::channel();
    let command = match op {
        "ingest" => {
            let Some(traces) = request.get("traces").and_then(Json::as_array) else {
                return error_response("ingest lacks a `traces` array", false);
            };
            match decode_trace_batch(traces) {
                Ok(traces) => Command::Ingest {
                    traces,
                    reply: reply_tx,
                },
                Err(e) => return error_response(e, false),
            }
        }
        "refine" => Command::Refine { reply: reply_tx },
        "model" => Command::Model {
            format: request
                .get("format")
                .and_then(Json::as_str)
                .unwrap_or("dot")
                .to_string(),
            reply: reply_tx,
        },
        "stats" => Command::Stats { reply: reply_tx },
        "snapshot" => {
            let Some(path) = request.get("path").and_then(Json::as_str) else {
                return error_response("snapshot lacks a `path` field", false);
            };
            Command::Snapshot {
                path: path.to_string(),
                reply: reply_tx,
            }
        }
        "subscribe" => Command::Subscribe {
            sink: Arc::clone(writer),
            reply: reply_tx,
        },
        "sleep" => Command::Sleep {
            ms: request.get("ms").and_then(Json::as_u64).unwrap_or(100),
            reply: reply_tx,
        },
        _ => unreachable!("dispatcher routes only session verbs here"),
    };

    // The backpressure seam: a full queue rejects instead of blocking.
    match tx.try_send(command) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            return error_response(format!("session `{name}` queue is full; retry later"), true)
        }
        Err(TrySendError::Disconnected(_)) => {
            return error_response(format!("session `{name}` is gone"), false)
        }
    }
    // Drop our sender clone before waiting, so a draining daemon is never
    // kept alive by a parked connection thread.
    drop(tx);

    match reply_rx.recv_timeout(Duration::from_millis(timeout_ms)) {
        Ok(response) => response,
        Err(RecvTimeoutError::Timeout) => error_response(
            format!("deadline exceeded after {timeout_ms}ms (the command may still complete)"),
            true,
        ),
        Err(RecvTimeoutError::Disconnected) => {
            error_response(format!("session `{name}` dropped the request"), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_to_ephemeral_port() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
    }
}
