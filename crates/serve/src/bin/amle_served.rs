//! The serving daemon binary.
//!
//! ```text
//! amle-served [--listen ADDR]
//! ```
//!
//! * `--listen ADDR` — address to bind (default `127.0.0.1:4155`; use port 0
//!   for an ephemeral port).
//!
//! Prints `listening on <addr>` to stdout once the socket is bound, then
//! serves until a `shutdown` request arrives and exits 0 after draining
//! every session. The protocol is newline-delimited JSON; see the
//! `amle_serve::server` module docs and DESIGN.md's "serving shell" chapter.

use amle_serve::Server;
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: amle-served [--listen ADDR]");
    eprintln!("  --listen ADDR   address to bind (default 127.0.0.1:4155)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:4155".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => {
                    eprintln!("--listen requires an address");
                    return usage();
                }
            },
            "--help" | "-h" => {
                return usage();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let server = match Server::bind(&listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
