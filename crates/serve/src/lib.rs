//! # amle-serve
//!
//! Learning-as-a-service: a resident daemon that keeps active-learning
//! sessions warm across trace deliveries, instead of paying the batch
//! loop's cold start (system build, oracle construction, verdict-cache
//! warm-up) on every invocation.
//!
//! The daemon listens on TCP and speaks newline-delimited JSON (see
//! [`server`] for the protocol and threading model). Each session wraps an
//! [`amle_core::Session`] — the incremental seam over the paper's Fig. 1
//! refinement loop — in an actor thread with a bounded command queue:
//!
//! * **session reuse** — the interned trace store, the warm condition
//!   oracle and the cross-iteration verdict cache persist across requests;
//! * **backpressure** — a full session queue rejects new work with a
//!   retriable error; the accept loop is never blocked by a refinement;
//! * **deadlines** — every request carries a timeout; a slow command
//!   returns a retriable deadline error instead of hanging the connection;
//! * **snapshot/restore** — a session's event log (trace batches and
//!   refinement markers) serializes to a JSON file and replays in a fresh
//!   process into the byte-identical state, witnessed by the store digest
//!   and the semantic fingerprint;
//! * **model streaming** — subscribed connections receive the refreshed
//!   model (DOT + fingerprint) after every refinement.
//!
//! The [`json`] module is the workspace's shared hand-rolled JSON
//! reader/writer (promoted from the bench crate, which re-exports it).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod server;
pub mod session_actor;

pub use server::Server;
pub use session_actor::{SessionSpec, DEFAULT_QUEUE_CAPACITY, DEFAULT_REQUEST_TIMEOUT_MS};
