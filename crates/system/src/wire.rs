//! Wire codec for traces: raw `i64` row matrices.
//!
//! The serving daemon and its snapshot files carry traces as plain integer
//! matrices — one row per time step, one column per variable in declaration
//! order, booleans as 0/1 (the same numeric view [`Value::to_i64`] gives and
//! the simulator's trace files use). This module is the single
//! encode/decode seam so the protocol, the snapshot format and the tests
//! cannot drift apart on column order or range handling.
//!
//! Decoding is strict: a row of the wrong width or a value outside its
//! sort's representable range is an error, never a silent wrap — a snapshot
//! that round-trips must describe exactly the traces that produced it.

use crate::{Trace, TraceStore};
use amle_expr::{Valuation, Value, VarSet};
use std::fmt;

/// Errors produced when decoding raw rows back into traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A row's column count did not match the variable set.
    RowWidth {
        /// Index of the offending row within the trace.
        row: usize,
        /// Number of declared variables.
        expected: usize,
        /// Number of columns the row actually had.
        got: usize,
    },
    /// A value lies outside the representable range of its variable's sort.
    ValueOutOfRange {
        /// Index of the offending row within the trace.
        row: usize,
        /// Name of the variable whose column is out of range.
        var: String,
        /// The raw value received.
        value: i64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::RowWidth { row, expected, got } => write!(
                f,
                "row {row}: expected {expected} columns (one per declared variable), got {got}"
            ),
            WireError::ValueOutOfRange { row, var, value } => {
                write!(
                    f,
                    "row {row}: value {value} out of range for variable `{var}`"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a trace as raw rows: one row per observation, one column per
/// variable in declaration order, booleans as 0/1.
pub fn trace_to_rows(trace: &Trace) -> Vec<Vec<i64>> {
    trace
        .observations()
        .iter()
        .map(|obs| obs.values().iter().map(Value::to_i64).collect())
        .collect()
}

/// Decodes raw rows back into a trace over the given variable set.
///
/// Each row must have exactly one column per declared variable, and every
/// value must lie within its sort's representable range.
pub fn trace_from_rows(vars: &VarSet, rows: &[Vec<i64>]) -> Result<Trace, WireError> {
    let mut observations = Vec::with_capacity(rows.len());
    for (row_idx, row) in rows.iter().enumerate() {
        if row.len() != vars.len() {
            return Err(WireError::RowWidth {
                row: row_idx,
                expected: vars.len(),
                got: row.len(),
            });
        }
        let mut values = Vec::with_capacity(row.len());
        for (id, raw) in vars.ids().zip(row.iter()) {
            let sort = vars.sort(id);
            let value = Value::from_i64(sort, *raw);
            if value.to_i64() != *raw {
                return Err(WireError::ValueOutOfRange {
                    row: row_idx,
                    var: vars.name(id).to_string(),
                    value: *raw,
                });
            }
            values.push(value);
        }
        observations.push(Valuation::from_values(vars, values));
    }
    Ok(Trace::new(observations))
}

/// Dumps every trace of a store as raw row matrices, in insertion order.
///
/// This is the snapshot body: replaying the matrices through
/// [`trace_from_rows`] and [`TraceStore::insert_trace`] reconstructs a store
/// with the same insertion order, and therefore the same learner input.
pub fn store_rows(store: &TraceStore) -> Vec<Vec<Vec<i64>>> {
    store
        .traces()
        .map(|id| trace_to_rows(&store.materialize(id)))
        .collect()
}

/// A short integrity digest (FNV-1a 64, 16 hex digits) over row matrices.
///
/// Snapshot files embed the digest of the store they serialized; restore
/// recomputes it over the replayed store and refuses to proceed on mismatch,
/// so a truncated or hand-edited snapshot fails loudly instead of learning
/// from corrupt traces.
pub fn rows_digest(traces: &[Vec<Vec<i64>>]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |n: i64| {
        for byte in n.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for trace in traces {
        mix(-1); // trace separator: cannot collide with a length below
        mix(trace.len() as i64);
        for row in trace {
            mix(row.len() as i64);
            for value in row {
                mix(*value);
            }
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::Sort;

    fn vars() -> VarSet {
        let mut vars = VarSet::new();
        vars.declare("inp", Sort::int(4)).unwrap();
        vars.declare("flag", Sort::Bool).unwrap();
        vars
    }

    #[test]
    fn round_trips_a_trace() {
        let vars = vars();
        let rows = vec![vec![3, 0], vec![7, 1], vec![0, 1]];
        let trace = trace_from_rows(&vars, &rows).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace_to_rows(&trace), rows);
    }

    #[test]
    fn rejects_wrong_width_rows() {
        let vars = vars();
        let err = trace_from_rows(&vars, &[vec![1, 0, 9]]).unwrap_err();
        assert_eq!(
            err,
            WireError::RowWidth {
                row: 0,
                expected: 2,
                got: 3
            }
        );
        assert!(err.to_string().contains("columns"));
    }

    #[test]
    fn rejects_out_of_range_values() {
        let vars = vars();
        // Sort::int(4) cannot hold 99; rejecting beats silently wrapping.
        let err = trace_from_rows(&vars, &[vec![99, 0]]).unwrap_err();
        assert_eq!(
            err,
            WireError::ValueOutOfRange {
                row: 0,
                var: "inp".to_string(),
                value: 99
            }
        );
        // Booleans only admit 0/1.
        let err = trace_from_rows(&vars, &[vec![1, 2]]).unwrap_err();
        assert!(matches!(err, WireError::ValueOutOfRange { value: 2, .. }));
    }

    #[test]
    fn store_rows_preserve_insertion_order_and_digest() {
        let vars = vars();
        let first = trace_from_rows(&vars, &[vec![1, 0], vec![2, 1]]).unwrap();
        let second = trace_from_rows(&vars, &[vec![2, 1], vec![1, 0]]).unwrap();

        let mut store = TraceStore::new();
        store.insert_trace(&first).unwrap();
        store.insert_trace(&second).unwrap();
        let rows = store_rows(&store);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![vec![1, 0], vec![2, 1]]);
        assert_eq!(rows[1], vec![vec![2, 1], vec![1, 0]]);

        // Replaying the rows reconstructs a store with the same digest.
        let mut replayed = TraceStore::new();
        for matrix in &rows {
            let trace = trace_from_rows(&vars, matrix).unwrap();
            replayed.insert_trace(&trace);
        }
        assert_eq!(rows_digest(&rows), rows_digest(&store_rows(&replayed)));

        // Any mutation changes the digest.
        let mut tampered = rows.clone();
        tampered[1][0][0] = 3;
        assert_ne!(rows_digest(&rows), rows_digest(&tampered));
        // Moving a row across a trace boundary changes it too.
        let rebalanced = vec![vec![vec![1, 0]], vec![vec![2, 1], vec![2, 1], vec![1, 0]]];
        assert_ne!(rows_digest(&rows), rows_digest(&rebalanced));
    }
}
