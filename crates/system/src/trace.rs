//! Execution traces and trace sets.

use amle_expr::{Valuation, VarId, VarSet};
use std::fmt;

/// A trace: a finite sequence of observations (valuations) over time.
///
/// In the paper a trace `σ = v1, …, vn` records the values of the observable
/// variables at consecutive discrete time steps. Here the observations are
/// full-system valuations; learners and abstraction code restrict their
/// attention to the observable subset of variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Trace {
    observations: Vec<Valuation>,
}

impl Trace {
    /// Creates a trace from a sequence of observations.
    pub fn new(observations: Vec<Valuation>) -> Self {
        Trace { observations }
    }

    /// The observations in order.
    pub fn observations(&self) -> &[Valuation] {
        &self.observations
    }

    /// Number of observations in the trace.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` if the trace has no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The prefix of the first `n` observations (the whole trace if `n`
    /// exceeds its length).
    pub fn prefix(&self, n: usize) -> Trace {
        Trace {
            observations: self.observations[..n.min(self.observations.len())].to_vec(),
        }
    }

    /// Appends an observation.
    pub fn push(&mut self, observation: Valuation) {
        self.observations.push(observation);
    }

    /// Iterates over consecutive observation pairs `(v_t, v_{t+1})`.
    pub fn steps(&self) -> impl Iterator<Item = (&Valuation, &Valuation)> {
        self.observations.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Renders the trace with variable names, one observation per line.
    pub fn display<'a>(&'a self, vars: &'a VarSet) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Trace, &'a VarSet);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (t, obs) in self.0.observations.iter().enumerate() {
                    writeln!(f, "t={t}: {}", obs.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, vars)
    }

    /// Projects each observation onto the listed variables, returning the raw
    /// value rows. Used by learners that only consider observable variables.
    pub fn project(&self, observables: &[VarId]) -> Vec<Vec<amle_expr::Value>> {
        self.observations
            .iter()
            .map(|obs| observables.iter().map(|id| obs.value(*id)).collect())
            .collect()
    }
}

impl FromIterator<Valuation> for Trace {
    fn from_iter<T: IntoIterator<Item = Valuation>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

/// A set (multiset, order-preserving) of traces used as learner input.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty trace set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trace, ignoring exact duplicates of already-present traces.
    ///
    /// Returns `true` if the trace was new.
    pub fn insert(&mut self, trace: Trace) -> bool {
        if trace.is_empty() || self.traces.contains(&trace) {
            return false;
        }
        self.traces.push(trace);
        true
    }

    /// The traces in insertion order.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Number of traces in the set.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` if the set contains no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total number of observations across all traces.
    pub fn total_observations(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Merges another trace set into this one (deduplicating).
    ///
    /// Returns the number of traces that were actually added.
    pub fn merge(&mut self, other: &TraceSet) -> usize {
        other
            .traces
            .iter()
            .filter(|t| self.insert((*t).clone()))
            .count()
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<T: IntoIterator<Item = Trace>>(iter: T) -> Self {
        let mut set = TraceSet::new();
        for trace in iter {
            set.insert(trace);
        }
        set
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<T: IntoIterator<Item = Trace>>(&mut self, iter: T) {
        for trace in iter {
            self.insert(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value, VarSet};

    fn vars() -> (VarSet, VarId, VarId) {
        let mut vars = VarSet::new();
        let a = vars.declare("a", Sort::int(4)).unwrap();
        let b = vars.declare("b", Sort::Bool).unwrap();
        (vars, a, b)
    }

    fn obs(vars: &VarSet, a: i64, b: bool) -> Valuation {
        let mut v = Valuation::zeroed(vars);
        v.set(VarId::from_index(0), Value::Int(a));
        v.set(VarId::from_index(1), Value::Bool(b));
        v
    }

    #[test]
    fn trace_basics() {
        let (vars, ..) = vars();
        let mut trace = Trace::default();
        assert!(trace.is_empty());
        trace.push(obs(&vars, 1, false));
        trace.push(obs(&vars, 2, true));
        trace.push(obs(&vars, 3, true));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.prefix(2).len(), 2);
        assert_eq!(trace.prefix(99).len(), 3);
        assert_eq!(trace.steps().count(), 2);
    }

    #[test]
    fn trace_projection() {
        let (vars, a, b) = vars();
        let trace: Trace = [obs(&vars, 1, false), obs(&vars, 2, true)]
            .into_iter()
            .collect();
        let rows = trace.project(&[a]);
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let rows = trace.project(&[b, a]);
        assert_eq!(rows[1], vec![Value::Bool(true), Value::Int(2)]);
    }

    #[test]
    fn trace_display() {
        let (vars, ..) = vars();
        let trace: Trace = [obs(&vars, 1, false)].into_iter().collect();
        let text = trace.display(&vars).to_string();
        assert!(text.contains("t=0"));
        assert!(text.contains("a=1"));
    }

    #[test]
    fn trace_set_deduplicates() {
        let (vars, ..) = vars();
        let t1: Trace = [obs(&vars, 1, false)].into_iter().collect();
        let t2: Trace = [obs(&vars, 2, false)].into_iter().collect();
        let mut set = TraceSet::new();
        assert!(set.insert(t1.clone()));
        assert!(!set.insert(t1.clone()));
        assert!(set.insert(t2.clone()));
        assert!(!set.insert(Trace::default()));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_observations(), 2);

        let mut other = TraceSet::new();
        other.insert(t1);
        other.insert([obs(&vars, 3, true)].into_iter().collect());
        assert_eq!(set.merge(&other), 1);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn trace_set_from_iterator() {
        let (vars, ..) = vars();
        let t1: Trace = [obs(&vars, 1, false)].into_iter().collect();
        let set: TraceSet = vec![t1.clone(), t1].into_iter().collect();
        assert_eq!(set.len(), 1);
        let mut set2 = TraceSet::new();
        set2.extend(set.iter().cloned());
        assert_eq!(set2.len(), 1);
    }
}
