//! The interned, shared-prefix trace store.
//!
//! The refinement loop of the paper (Section III-B) splices every valid
//! counterexample onto the shortest matching prefix of *every* existing
//! trace, so the trace set grows super-linearly in the iteration count when
//! a benchmark keeps producing counterexamples. Storing each trace as its
//! own `Vec<Valuation>` (as [`TraceSet`](crate::TraceSet) does) then pays
//! three super-linear costs per iteration: cloning whole observation
//! vectors for every splice, scanning the full set for duplicates on every
//! insert, and re-processing shared prefixes in every downstream consumer.
//!
//! [`TraceStore`] removes all three:
//!
//! * every distinct [`Valuation`] is **interned** once and addressed by a
//!   compact [`ObsId`], so equality is an integer comparison and consumers
//!   can memoise per-observation work (predicate evaluation, letter
//!   lookup) by id;
//! * traces are stored as paths in a **shared-prefix DAG** of
//!   [segments](SegmentId): two traces with a common prefix share the
//!   segment chain of that prefix, so a splice records `(prefix segment,
//!   from, to)` in O(1) instead of cloning the prefix;
//! * a trace is just a *marked* segment, so structural duplicate detection
//!   is O(1) segment identity instead of an O(|T|·len) scan.
//!
//! Determinism: traces are enumerated in insertion order, observation ids
//! are assigned in interning order, and no iteration order ever depends on
//! hashing — the store is a drop-in replacement for `TraceSet` that
//! produces byte-identical learner input (pinned by the differential tests
//! in `amle-core`).

use crate::trace::{Trace, TraceSet};
use amle_expr::Valuation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of an interned observation (a distinct [`Valuation`]).
///
/// Ids are dense indices assigned in interning order, so consumers can
/// memoise per-observation results in a plain `Vec` indexed by
/// [`ObsId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObsId(u32);

impl ObsId {
    /// The dense index of the observation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a stored trace, dense in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u32);

impl TraceId {
    /// The dense insertion-order index of the trace.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a segment of the shared-prefix DAG: a node whose path from the
/// root spells a (possibly empty) observation sequence.
///
/// Segments are created by [`TraceStore::insert`] and
/// [`TraceStore::splice`], and located by [`TraceStore::prefix`]. Two equal
/// observation sequences always resolve to the *same* segment, which is
/// what makes duplicate detection O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(u32);

/// One node of the shared-prefix DAG.
#[derive(Debug, Clone)]
struct Segment {
    /// Parent segment; the root points at itself.
    parent: u32,
    /// The observation this segment appends to its parent's sequence
    /// (meaningless for the root).
    obs: u32,
    /// Length of the observation sequence spelled by this segment.
    depth: u32,
    /// Child segments, keyed by the appended observation. Kept as a sorted
    /// vector: branching factors are small and binary search keeps lookups
    /// deterministic and allocation-light.
    children: Vec<(u32, u32)>,
    /// The trace id if this segment's sequence has been inserted as a trace.
    trace: Option<u32>,
}

/// Aggregate statistics of a [`TraceStore`], surfaced in run reports and the
/// benchmark tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Number of stored traces.
    pub traces: usize,
    /// Number of distinct interned observations.
    pub unique_observations: usize,
    /// Number of segments in the shared-prefix DAG (excluding the root);
    /// equivalently, the number of distinct non-empty prefixes stored.
    pub segments: usize,
    /// Total observation count summed over all traces — what a flat
    /// `Vec<Trace>` representation would store.
    pub stored_observations: u64,
    /// Observations that the DAG shares instead of duplicating:
    /// `stored_observations - segments`.
    pub shared_observations: u64,
    /// Estimated heap bytes saved versus the flat `Vec<Trace>`
    /// representation (interning plus prefix sharing, minus the DAG's own
    /// bookkeeping).
    pub approx_bytes_saved: u64,
}

/// Process-unique store identities, used by incremental consumers (the
/// learners' word caches) to distinguish "the same store, grown" from "a
/// different store that happens to have the same length".
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// A deduplicating trace container that interns observations and shares
/// trace prefixes (see the module-level documentation above).
///
/// # Example
///
/// Splicing a counterexample onto a stored trace shares the prefix segments
/// with the parent trace, and structurally identical traces dedupe to one
/// entry:
///
/// ```
/// use amle_expr::{Sort, Valuation, Value, VarId, VarSet};
/// use amle_system::TraceStore;
///
/// let mut vars = VarSet::new();
/// let x = vars.declare("x", Sort::int(4))?;
/// let obs = |v: i64| {
///     let mut o = Valuation::zeroed(&vars);
///     o.set(x, Value::Int(v));
///     o
/// };
///
/// let mut store = TraceStore::new();
/// let t = store.insert(&[obs(1), obs(2), obs(3)]).expect("new trace");
///
/// // Splice `4, 5` onto the length-2 prefix `1, 2` of the stored trace.
/// let prefix = store.prefix(t, 2);
/// let spliced = store.splice(prefix, &obs(4), &obs(5)).expect("new trace");
/// assert_eq!(
///     store.materialize(spliced).observations(),
///     &[obs(1), obs(2), obs(4), obs(5)]
/// );
///
/// // The same splice again is a structural duplicate: O(1), no new trace.
/// assert_eq!(store.splice(prefix, &obs(4), &obs(5)), None);
///
/// // Both traces share the `1, 2` prefix segments, and the five distinct
/// // observations are interned once each.
/// let stats = store.stats();
/// assert_eq!(stats.traces, 2);
/// assert_eq!(stats.unique_observations, 5);
/// assert_eq!(stats.stored_observations, 7); // 3 + 4 as a flat Vec<Trace>
/// assert_eq!(stats.segments, 5); // 1,2,3 plus 4,5 under the shared prefix
/// # Ok::<(), amle_expr::SortError>(())
/// ```
#[derive(Debug)]
pub struct TraceStore {
    id: u64,
    observations: Vec<Valuation>,
    interner: HashMap<Valuation, u32>,
    segments: Vec<Segment>,
    /// Segment of each trace, in insertion order.
    traces: Vec<u32>,
    stored_observations: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

/// A clone mints a **fresh** [`TraceStore::store_id`]: a clone that diverges
/// from the original must not look like an append-only growth of it to
/// incremental consumers keyed on the id.
impl Clone for TraceStore {
    fn clone(&self) -> Self {
        TraceStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            observations: self.observations.clone(),
            interner: self.interner.clone(),
            segments: self.segments.clone(),
            traces: self.traces.clone(),
            stored_observations: self.stored_observations,
        }
    }
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TraceStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            observations: Vec::new(),
            interner: HashMap::new(),
            segments: vec![Segment {
                parent: 0,
                obs: 0,
                depth: 0,
                children: Vec::new(),
                trace: None,
            }],
            traces: Vec::new(),
            stored_observations: 0,
        }
    }

    /// Builds a store containing the traces of `set`, in order.
    pub fn from_trace_set(set: &TraceSet) -> Self {
        let mut store = TraceStore::new();
        for trace in set.iter() {
            store.insert(trace.observations());
        }
        store
    }

    /// Materialises every stored trace into a flat [`TraceSet`], in
    /// insertion order. Used by non-incremental learners and by the
    /// differential tests that pin store/flat equivalence.
    pub fn to_trace_set(&self) -> TraceSet {
        self.traces().map(|t| self.materialize(t)).collect()
    }

    /// A process-unique identity for this store instance. Incremental
    /// consumers cache it to detect that a later call refers to the same
    /// (append-only grown) store rather than a fresh one.
    pub fn store_id(&self) -> u64 {
        self.id
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Number of distinct interned observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of segments in the shared-prefix DAG, excluding the root.
    pub fn num_segments(&self) -> usize {
        self.segments.len() - 1
    }

    /// The interned valuation behind an observation id.
    ///
    /// # Panics
    ///
    /// Panics if `obs` does not belong to this store.
    pub fn valuation(&self, obs: ObsId) -> &Valuation {
        &self.observations[obs.index()]
    }

    /// The stored traces, in insertion order.
    pub fn traces(&self) -> impl Iterator<Item = TraceId> {
        (0..self.traces.len() as u32).map(TraceId)
    }

    /// Length (number of observations) of a stored trace.
    pub fn trace_len(&self, trace: TraceId) -> usize {
        self.segments[self.traces[trace.index()] as usize].depth as usize
    }

    /// Writes the observation ids of `trace` into `out` (cleared first), in
    /// trace order. Using a caller-provided buffer keeps the per-trace scans
    /// of the splicing loop allocation-free.
    pub fn obs_ids_into(&self, trace: TraceId, out: &mut Vec<ObsId>) {
        out.clear();
        let mut segment = self.traces[trace.index()] as usize;
        while self.segments[segment].depth > 0 {
            out.push(ObsId(self.segments[segment].obs));
            segment = self.segments[segment].parent as usize;
        }
        out.reverse();
    }

    /// The observation ids of a stored trace, in order.
    pub fn obs_ids(&self, trace: TraceId) -> Vec<ObsId> {
        let mut out = Vec::new();
        self.obs_ids_into(trace, &mut out);
        out
    }

    /// Materialises one stored trace as a flat [`Trace`].
    pub fn materialize(&self, trace: TraceId) -> Trace {
        self.obs_ids(trace)
            .into_iter()
            .map(|o| self.valuation(o).clone())
            .collect()
    }

    /// Interns one valuation, returning its id. Internal: observations enter
    /// the table only via [`insert`](Self::insert) and
    /// [`splice`](Self::splice), which guarantees every interned observation
    /// occurs in at least one stored trace — the invariant the learners'
    /// per-observation mining relies on.
    fn intern(&mut self, valuation: &Valuation) -> u32 {
        if let Some(id) = self.interner.get(valuation) {
            return *id;
        }
        let id = self.observations.len() as u32;
        self.observations.push(valuation.clone());
        self.interner.insert(valuation.clone(), id);
        id
    }

    /// Descends from `segment` along `obs`, creating the child if needed.
    fn child(&mut self, segment: u32, obs: u32) -> u32 {
        let children = &self.segments[segment as usize].children;
        match children.binary_search_by_key(&obs, |(o, _)| *o) {
            Ok(position) => self.segments[segment as usize].children[position].1,
            Err(position) => {
                let child = self.segments.len() as u32;
                let depth = self.segments[segment as usize].depth + 1;
                self.segments.push(Segment {
                    parent: segment,
                    obs,
                    depth,
                    children: Vec::new(),
                    trace: None,
                });
                self.segments[segment as usize]
                    .children
                    .insert(position, (obs, child));
                child
            }
        }
    }

    /// Marks `segment` as a trace, returning its fresh id, or `None` when the
    /// identical observation sequence is already stored.
    fn mark(&mut self, segment: u32) -> Option<TraceId> {
        if self.segments[segment as usize].trace.is_some() {
            return None;
        }
        let id = self.traces.len() as u32;
        self.segments[segment as usize].trace = Some(id);
        self.traces.push(segment);
        self.stored_observations += u64::from(self.segments[segment as usize].depth);
        Some(TraceId(id))
    }

    /// Inserts a trace given as an observation slice.
    ///
    /// Returns the new trace's id, or `None` when the sequence is empty or
    /// an identical trace is already stored — the same contract as
    /// [`TraceSet::insert`], decided in O(length) instead of O(|T|·length).
    pub fn insert(&mut self, observations: &[Valuation]) -> Option<TraceId> {
        if observations.is_empty() {
            return None;
        }
        let mut segment = 0;
        for valuation in observations {
            let obs = self.intern(valuation);
            segment = self.child(segment, obs);
        }
        self.mark(segment)
    }

    /// Inserts a [`Trace`], with the same contract as [`insert`](Self::insert).
    pub fn insert_trace(&mut self, trace: &Trace) -> Option<TraceId> {
        self.insert(trace.observations())
    }

    /// The segment spelling the first `len` observations of `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the trace's length.
    pub fn prefix(&self, trace: TraceId, len: usize) -> SegmentId {
        let mut segment = self.traces[trace.index()] as usize;
        assert!(
            len <= self.segments[segment].depth as usize,
            "prefix length {len} exceeds trace length {}",
            self.segments[segment].depth
        );
        while self.segments[segment].depth as usize > len {
            segment = self.segments[segment].parent as usize;
        }
        SegmentId(segment as u32)
    }

    /// The empty prefix (the DAG root), onto which a splice degenerates to
    /// the bare counterexample transition.
    pub fn root(&self) -> SegmentId {
        SegmentId(0)
    }

    /// Splices the counterexample transition `from → to` onto a shared
    /// prefix: stores the trace `prefix · from · to` (Section III-B of the
    /// paper, `T_CE`). O(1) beyond interning the two observations.
    ///
    /// Returns the new trace's id, or `None` when the spliced trace is a
    /// structural duplicate of a stored one.
    pub fn splice(
        &mut self,
        prefix: SegmentId,
        from: &Valuation,
        to: &Valuation,
    ) -> Option<TraceId> {
        let from = self.intern(from);
        let to = self.intern(to);
        let mid = self.child(prefix.0, from);
        let end = self.child(mid, to);
        self.mark(end)
    }

    /// Aggregate statistics (see [`TraceStoreStats`]).
    pub fn stats(&self) -> TraceStoreStats {
        let per_observation = self
            .observations
            .first()
            .map(|v| {
                std::mem::size_of::<Valuation>() + v.len() * std::mem::size_of::<amle_expr::Value>()
            })
            .unwrap_or(0) as u64;
        let segments = self.num_segments() as u64;
        // A flat representation clones every stored observation; the store
        // keeps two valuations per unique observation (the dense table plus
        // the interner's key copy) and one segment node per stored prefix
        // element.
        let flat_bytes = self.stored_observations * per_observation;
        let store_bytes = 2 * self.observations.len() as u64 * per_observation
            + segments * std::mem::size_of::<Segment>() as u64;
        TraceStoreStats {
            traces: self.traces.len(),
            unique_observations: self.observations.len(),
            segments: self.num_segments(),
            stored_observations: self.stored_observations,
            shared_observations: self.stored_observations - segments,
            approx_bytes_saved: flat_bytes.saturating_sub(store_bytes),
        }
    }

    /// Iterates the distinct steps `(v_t, v_{t+1})` stored in the DAG from
    /// segment index `watermark` (0-based over segments *including* the
    /// root) onwards, as observation-id pairs.
    ///
    /// Every step of every stored trace corresponds to a segment of depth
    /// ≥ 2 (the pair being the parent's and the segment's observation), and
    /// segments are append-only — so incremental consumers can mine steps
    /// of newly added traces by remembering `1 + num_segments()` as their
    /// next watermark.
    pub fn steps_since(&self, watermark: usize) -> impl Iterator<Item = (ObsId, ObsId)> + '_ {
        // Clamp like `observations_since`: an out-of-range watermark (e.g.
        // one cached against a different store) yields an empty iterator,
        // not a slice panic.
        self.segments[watermark.clamp(1, self.segments.len())..]
            .iter()
            .filter(|s| s.depth >= 2)
            .map(|s| (ObsId(self.segments[s.parent as usize].obs), ObsId(s.obs)))
    }

    /// The distinct interned observations from id `watermark` onwards —
    /// the incremental counterpart of scanning every trace's observations
    /// for distinct values.
    pub fn observations_since(
        &self,
        watermark: usize,
    ) -> impl Iterator<Item = (ObsId, &Valuation)> {
        self.observations[watermark.min(self.observations.len())..]
            .iter()
            .enumerate()
            .map(move |(i, v)| (ObsId((watermark + i) as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amle_expr::{Sort, Value, VarId, VarSet};

    fn vars() -> (VarSet, VarId) {
        let mut vars = VarSet::new();
        let x = vars.declare("x", Sort::int(8)).unwrap();
        (vars, x)
    }

    fn obs(vars: &VarSet, x: VarId, v: i64) -> Valuation {
        let mut o = Valuation::zeroed(vars);
        o.set(x, Value::Int(v));
        o
    }

    #[test]
    fn insert_interns_and_deduplicates() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        assert!(store.insert(&[]).is_none());
        let a = store.insert(&[o(1), o(2), o(1)]).unwrap();
        assert_eq!(store.trace_len(a), 3);
        // Re-inserting the identical sequence is a duplicate.
        assert!(store.insert(&[o(1), o(2), o(1)]).is_none());
        assert_eq!(store.len(), 1);
        // The repeated `1` interned once.
        assert_eq!(store.num_observations(), 2);
        assert_eq!(store.materialize(a).observations(), &[o(1), o(2), o(1)]);
    }

    #[test]
    fn prefixes_are_shared() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        store.insert(&[o(1), o(2), o(3)]).unwrap();
        store.insert(&[o(1), o(2), o(4)]).unwrap();
        // 1, 12, 123, 124 — the shared prefix contributes its segments once.
        assert_eq!(store.num_segments(), 4);
        assert_eq!(store.stats().stored_observations, 6);
        assert_eq!(store.stats().shared_observations, 2);
    }

    #[test]
    fn splice_matches_flat_construction() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        let t = store.insert(&[o(1), o(2), o(3)]).unwrap();
        let spliced = store.splice(store.prefix(t, 1), &o(7), &o(8)).unwrap();
        assert_eq!(
            store.materialize(spliced).observations(),
            &[o(1), o(7), o(8)]
        );
        // Splicing onto the empty prefix yields the bare transition.
        let bare = store.splice(store.root(), &o(7), &o(8)).unwrap();
        assert_eq!(store.materialize(bare).observations(), &[o(7), o(8)]);
        // Duplicates are detected without cloning anything.
        assert!(store.splice(store.prefix(t, 1), &o(7), &o(8)).is_none());
    }

    #[test]
    fn equal_content_resolves_to_the_same_segment() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        let a = store.insert(&[o(1), o(2), o(3)]).unwrap();
        let b = store.insert(&[o(1), o(2)]).unwrap();
        // The prefix of `a` at length 2 IS trace `b`'s segment.
        assert_eq!(store.prefix(a, 2), store.prefix(b, 2));
        // Splicing onto it therefore dedupes against extensions of either.
        let s = store.splice(store.prefix(a, 2), &o(9), &o(9)).unwrap();
        assert_eq!(
            store.materialize(s).observations(),
            &[o(1), o(2), o(9), o(9)]
        );
        assert!(store.splice(store.prefix(b, 2), &o(9), &o(9)).is_none());
    }

    #[test]
    fn round_trips_a_trace_set() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut set = TraceSet::new();
        set.insert(Trace::new(vec![o(1), o(2)]));
        set.insert(Trace::new(vec![o(1), o(3), o(4)]));
        set.insert(Trace::new(vec![o(5)]));
        let store = TraceStore::from_trace_set(&set);
        assert_eq!(store.len(), 3);
        assert_eq!(store.to_trace_set(), set);
    }

    #[test]
    fn steps_and_observations_watermarks() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        store.insert(&[o(1), o(2), o(3)]).unwrap();
        let steps: Vec<(i64, i64)> = store
            .steps_since(0)
            .map(|(a, b)| {
                (
                    store.valuation(a).value(x).to_i64(),
                    store.valuation(b).value(x).to_i64(),
                )
            })
            .collect();
        assert_eq!(steps, vec![(1, 2), (2, 3)]);

        let watermark_segments = 1 + store.num_segments();
        let watermark_obs = store.num_observations();
        store.insert(&[o(1), o(2), o(9)]).unwrap();
        let new_steps: Vec<(i64, i64)> = store
            .steps_since(watermark_segments)
            .map(|(a, b)| {
                (
                    store.valuation(a).value(x).to_i64(),
                    store.valuation(b).value(x).to_i64(),
                )
            })
            .collect();
        // Only the step introduced by the new suffix segment is new.
        assert_eq!(new_steps, vec![(2, 9)]);
        let new_obs: Vec<i64> = store
            .observations_since(watermark_obs)
            .map(|(_, v)| v.value(x).to_i64())
            .collect();
        assert_eq!(new_obs, vec![9]);
        // Out-of-range watermarks (e.g. cached against another store) yield
        // empty iterators instead of panicking, for both accessors.
        assert_eq!(store.steps_since(9999).count(), 0);
        assert_eq!(store.observations_since(9999).count(), 0);
    }

    #[test]
    fn store_ids_are_unique() {
        assert_ne!(TraceStore::new().store_id(), TraceStore::new().store_id());
    }

    #[test]
    fn stats_report_bytes_saved() {
        let (vars, x) = vars();
        let o = |v| obs(&vars, x, v);
        let mut store = TraceStore::new();
        assert_eq!(store.stats().approx_bytes_saved, 0);
        let t = store.insert(&[o(1), o(2), o(3), o(4)]).unwrap();
        for v in 0..40 {
            store.splice(store.prefix(t, 3), &o(100 + v), &o(7));
        }
        let stats = store.stats();
        assert_eq!(stats.traces, 41);
        // 4 + 41 * 5 observations stored flat, heavily shared here.
        assert_eq!(stats.stored_observations, 4 + 40 * 5);
        assert!(stats.approx_bytes_saved > 0);
    }
}
