//! The transition-system model and its builder.

use amle_expr::{Expr, Sort, Valuation, Value, VarId, VarSet};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors raised while declaring or assembling a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSystemError {
    /// A variable name was declared twice.
    DuplicateVariable {
        /// The offending name.
        name: String,
    },
    /// An initial value does not fit the sort of its state variable.
    InitOutOfRange {
        /// Name of the state variable.
        name: String,
    },
    /// An update expression was registered for a variable that is not a
    /// declared state variable.
    NotAStateVariable {
        /// Display name of the offending variable.
        name: String,
    },
    /// An update expression has a different sort than its state variable.
    UpdateSortMismatch {
        /// Name of the state variable.
        name: String,
        /// Sort of the variable.
        expected: Sort,
        /// Sort of the offending update expression.
        found: Sort,
    },
    /// A state variable has no update expression.
    MissingUpdate {
        /// Name of the state variable.
        name: String,
    },
    /// An input range is empty or lies outside the sort's representable range.
    BadInputRange {
        /// Name of the input variable.
        name: String,
    },
    /// The system has no state variables at all.
    NoStateVariables,
}

impl fmt::Display for BuildSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSystemError::DuplicateVariable { name } => {
                write!(f, "variable `{name}` is already declared")
            }
            BuildSystemError::InitOutOfRange { name } => {
                write!(f, "initial value of `{name}` does not fit its sort")
            }
            BuildSystemError::NotAStateVariable { name } => {
                write!(f, "`{name}` is not a declared state variable")
            }
            BuildSystemError::UpdateSortMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "update of `{name}` has sort {found} but the variable has sort {expected}"
            ),
            BuildSystemError::MissingUpdate { name } => {
                write!(f, "state variable `{name}` has no update expression")
            }
            BuildSystemError::BadInputRange { name } => {
                write!(f, "input `{name}` has an empty or out-of-range value range")
            }
            BuildSystemError::NoStateVariables => write!(f, "system has no state variables"),
        }
    }
}

impl Error for BuildSystemError {}

/// Builder for [`System`] values.
///
/// Declare inputs with [`SystemBuilder::input`] (optionally range-restricted
/// with [`SystemBuilder::input_in_range`]), state variables with
/// [`SystemBuilder::state`], register one update expression per state
/// variable with [`SystemBuilder::update`], and call
/// [`SystemBuilder::build`].
#[derive(Debug, Default)]
pub struct SystemBuilder {
    vars: VarSet,
    name: String,
    inputs: Vec<VarId>,
    input_ranges: BTreeMap<VarId, (i64, i64)>,
    states: Vec<VarId>,
    init: BTreeMap<VarId, Value>,
    updates: BTreeMap<VarId, Expr>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a human-readable name for the system (used in reports).
    pub fn name<N: Into<String>>(&mut self, name: N) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Declares an input variable; the environment picks an arbitrary value
    /// of the sort each step.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError::DuplicateVariable`] if the name is taken.
    pub fn input<N: Into<String>>(
        &mut self,
        name: N,
        sort: Sort,
    ) -> Result<VarId, BuildSystemError> {
        let name = name.into();
        let id = self
            .vars
            .declare(name.clone(), sort)
            .map_err(|_| BuildSystemError::DuplicateVariable { name })?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Declares an input variable restricted to an inclusive value range.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError::DuplicateVariable`] if the name is taken,
    /// or [`BuildSystemError::BadInputRange`] if the range is empty or not
    /// representable in the sort.
    pub fn input_in_range<N: Into<String>>(
        &mut self,
        name: N,
        sort: Sort,
        lo: i64,
        hi: i64,
    ) -> Result<VarId, BuildSystemError> {
        let name = name.into();
        let (slo, shi) = sort.value_range();
        if lo > hi || lo < slo || hi > shi {
            return Err(BuildSystemError::BadInputRange { name });
        }
        let id = self.input(name, sort)?;
        self.input_ranges.insert(id, (lo, hi));
        Ok(id)
    }

    /// Declares a state variable with its initial value.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError::DuplicateVariable`] if the name is taken,
    /// or [`BuildSystemError::InitOutOfRange`] if the initial value does not
    /// fit the sort.
    pub fn state<N: Into<String>>(
        &mut self,
        name: N,
        sort: Sort,
        init: Value,
    ) -> Result<VarId, BuildSystemError> {
        let name = name.into();
        if !init.fits(&sort) {
            return Err(BuildSystemError::InitOutOfRange { name });
        }
        let id = self
            .vars
            .declare(name.clone(), sort)
            .map_err(|_| BuildSystemError::DuplicateVariable { name })?;
        self.states.push(id);
        self.init.insert(id, init);
        Ok(id)
    }

    /// Convenience: declares a state variable of an enumeration sort with a
    /// named initial variant.
    ///
    /// # Errors
    ///
    /// As for [`SystemBuilder::state`]; additionally returns
    /// [`BuildSystemError::InitOutOfRange`] if `init_variant` is not a
    /// variant of the sort.
    pub fn state_enum<N: Into<String>>(
        &mut self,
        name: N,
        sort: Sort,
        init_variant: &str,
    ) -> Result<VarId, BuildSystemError> {
        let name = name.into();
        let idx = sort
            .variant_index(init_variant)
            .ok_or(BuildSystemError::InitOutOfRange { name: name.clone() })?;
        self.state(name, sort, Value::Enum(idx as i64))
    }

    /// An expression referring to a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared through this builder.
    pub fn var(&self, id: VarId) -> Expr {
        Expr::var(id, self.vars.sort(id).clone())
    }

    /// An enumeration constant of the sort of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an enumeration variable or the variant does not
    /// exist.
    pub fn enum_const(&self, id: VarId, variant: &str) -> Expr {
        Expr::enum_val(self.vars.sort(id), variant)
    }

    /// Registers the update expression (next-state function) of a state
    /// variable.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError::NotAStateVariable`] if `id` is not a state
    /// variable, or [`BuildSystemError::UpdateSortMismatch`] if the expression
    /// sort differs from the variable sort.
    pub fn update(&mut self, id: VarId, expr: Expr) -> Result<&mut Self, BuildSystemError> {
        if !self.states.contains(&id) {
            return Err(BuildSystemError::NotAStateVariable {
                name: self
                    .vars
                    .info(id)
                    .map(|i| i.name.clone())
                    .unwrap_or_else(|| id.to_string()),
            });
        }
        let expected = self.vars.sort(id).clone();
        if !expr.sort().compatible(&expected) {
            return Err(BuildSystemError::UpdateSortMismatch {
                name: self.vars.name(id).to_string(),
                expected,
                found: expr.sort().clone(),
            });
        }
        self.updates.insert(id, expr);
        Ok(self)
    }

    /// Finalises the builder into a [`System`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError::MissingUpdate`] if any state variable lacks
    /// an update expression, or [`BuildSystemError::NoStateVariables`] if no
    /// state variable was declared.
    pub fn build(self) -> Result<System, BuildSystemError> {
        if self.states.is_empty() {
            return Err(BuildSystemError::NoStateVariables);
        }
        for id in &self.states {
            if !self.updates.contains_key(id) {
                return Err(BuildSystemError::MissingUpdate {
                    name: self.vars.name(*id).to_string(),
                });
            }
        }
        Ok(System {
            name: if self.name.is_empty() {
                "unnamed".to_string()
            } else {
                self.name
            },
            vars: self.vars,
            inputs: self.inputs,
            input_ranges: self.input_ranges,
            states: self.states,
            init: self.init,
            updates: self.updates,
        })
    }
}

/// A finite-state transition system `S = (X, X', R, Init)`.
///
/// `X` is the set of declared variables (state and input). The transition
/// relation `R` is given functionally: each state variable's next value is
/// its update expression evaluated on the current valuation, and each input
/// variable's next value is an arbitrary member of its range. `Init`
/// constrains state variables to their declared initial values and inputs to
/// their ranges.
#[derive(Debug, Clone)]
pub struct System {
    name: String,
    vars: VarSet,
    inputs: Vec<VarId>,
    input_ranges: BTreeMap<VarId, (i64, i64)>,
    states: Vec<VarId>,
    init: BTreeMap<VarId, Value>,
    updates: BTreeMap<VarId, Expr>,
}

impl System {
    /// The system's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declaration table of all system variables.
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// The declared state variables, in declaration order.
    pub fn state_vars(&self) -> &[VarId] {
        &self.states
    }

    /// The declared input variables, in declaration order.
    pub fn input_vars(&self) -> &[VarId] {
        &self.inputs
    }

    /// All variables (inputs and state) in declaration order.
    pub fn all_vars(&self) -> Vec<VarId> {
        self.vars.ids().collect()
    }

    /// Returns `true` if `id` is an input variable.
    pub fn is_input(&self, id: VarId) -> bool {
        self.inputs.contains(&id)
    }

    /// The update expression of a state variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a state variable of this system.
    pub fn update(&self, id: VarId) -> &Expr {
        self.updates
            .get(&id)
            .unwrap_or_else(|| panic!("{} is not a state variable", self.vars.name(id)))
    }

    /// The initial value of a state variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a state variable of this system.
    pub fn initial_value(&self, id: VarId) -> Value {
        *self
            .init
            .get(&id)
            .unwrap_or_else(|| panic!("{} is not a state variable", self.vars.name(id)))
    }

    /// The declared range of an input variable (defaults to the full sort
    /// range).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input variable of this system.
    pub fn input_range(&self, id: VarId) -> (i64, i64) {
        assert!(
            self.is_input(id),
            "{} is not an input variable",
            self.vars.name(id)
        );
        self.input_ranges
            .get(&id)
            .copied()
            .unwrap_or_else(|| self.vars.sort(id).value_range())
    }

    /// An expression referring to a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared in this system.
    pub fn var(&self, id: VarId) -> Expr {
        Expr::var(id, self.vars.sort(id).clone())
    }

    /// The initial-state constraint `Init(X)` as a boolean expression:
    /// the conjunction of `x = init(x)` for state variables and of the range
    /// constraints for input variables.
    pub fn init_expr(&self) -> Expr {
        let mut conjuncts = Vec::new();
        for id in &self.states {
            let value = Expr::constant(self.vars.sort(*id), self.init[id])
                .expect("initial values were validated at build time");
            conjuncts.push(self.var(*id).eq(&value));
        }
        for id in &self.inputs {
            conjuncts.push(self.input_constraint(*id));
        }
        Expr::and_all(conjuncts)
    }

    /// The range constraint of an input variable as a boolean expression over
    /// that variable (the constant `true` when the full sort range is
    /// allowed).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input variable of this system.
    pub fn input_constraint(&self, id: VarId) -> Expr {
        let sort = self.vars.sort(id).clone();
        let (lo, hi) = self.input_range(id);
        let (slo, shi) = sort.value_range();
        if (lo, hi) == (slo, shi) {
            return Expr::true_();
        }
        let var = self.var(id);
        let lo_c = Expr::constant(&sort, Value::from_i64(&sort, lo)).expect("range validated");
        let hi_c = Expr::constant(&sort, Value::from_i64(&sort, hi)).expect("range validated");
        if sort.is_bool() {
            // A restricted boolean input is a constant.
            return var.eq(&lo_c);
        }
        var.ge(&lo_c).and(&var.le(&hi_c))
    }

    /// The conjunction of all input range constraints.
    pub fn input_constraints_expr(&self) -> Expr {
        Expr::and_all(self.inputs.iter().map(|id| self.input_constraint(*id)))
    }

    /// The initial valuation: state variables at their initial values, inputs
    /// at the low end of their range.
    pub fn initial_valuation(&self) -> Valuation {
        let mut v = Valuation::zeroed(&self.vars);
        for id in &self.states {
            v.set(*id, self.init[id]);
        }
        for id in &self.inputs {
            let (lo, _) = self.input_range(*id);
            v.set(*id, Value::from_i64(self.vars.sort(*id), lo));
        }
        v
    }

    /// Computes the successor valuation: state variables take the value of
    /// their update expressions evaluated on `current`, input variables take
    /// the values given in `next_inputs` (a list of `(input, value)` pairs).
    ///
    /// # Panics
    ///
    /// Panics if a pair in `next_inputs` names a non-input variable or a value
    /// that does not fit its sort.
    pub fn step(&self, current: &Valuation, next_inputs: &[(VarId, Value)]) -> Valuation {
        let mut next = current.clone();
        for id in &self.states {
            next.set(*id, self.updates[id].eval(current));
        }
        for (id, value) in next_inputs {
            assert!(
                self.is_input(*id),
                "{} is not an input variable",
                self.vars.name(*id)
            );
            assert!(
                value.fits(self.vars.sort(*id)),
                "value {value} does not fit input {}",
                self.vars.name(*id)
            );
            next.set(*id, *value);
        }
        next
    }

    /// Checks whether a valuation satisfies the initial-state constraint.
    pub fn satisfies_init(&self, v: &Valuation) -> bool {
        self.init_expr().eval_bool(v)
    }

    /// Checks whether `(current, next)` is a transition of the system, i.e.
    /// every state variable in `next` equals its update expression evaluated
    /// on `current` and every input value in `next` lies in its range.
    pub fn is_transition(&self, current: &Valuation, next: &Valuation) -> bool {
        for id in &self.states {
            if next.value(*id) != self.updates[id].eval(current) {
                return false;
            }
        }
        for id in &self.inputs {
            let (lo, hi) = self.input_range(*id);
            let v = next.value(*id).to_i64();
            if v < lo || v > hi {
                return false;
            }
        }
        true
    }

    /// Checks whether a trace is consistent with the system's transition
    /// relation: every consecutive pair of observations is a transition and
    /// every recorded input value lies in its declared range.
    ///
    /// This mirrors the paper's definition of a *positive trace* except for
    /// the "the first observation has a predecessor satisfying `Init`"
    /// clause, which depends on the (unrecorded) input values at time zero;
    /// simulator-generated traces satisfy it by construction and
    /// counterexample traces are spliced onto prefixes of such traces.
    pub fn is_execution_trace(&self, trace: &crate::Trace) -> bool {
        let in_range = |obs: &Valuation| {
            self.inputs.iter().all(|id| {
                let (lo, hi) = self.input_range(*id);
                let v = obs.value(*id).to_i64();
                v >= lo && v <= hi
            })
        };
        trace.observations().iter().all(in_range)
            && trace
                .observations()
                .windows(2)
                .all(|w| self.is_transition(&w[0], &w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn counter_system() -> (System, VarId, VarId) {
        let mut b = SystemBuilder::new();
        b.name("counter");
        let tick = b.input("tick", Sort::Bool).unwrap();
        let count = b.state("count", Sort::int(4), Value::Int(0)).unwrap();
        let count_e = b.var(count);
        let next = b.var(tick).ite(
            &count_e
                .lt(&Expr::int_val(15, 4))
                .ite(&count_e.add(&Expr::int_val(1, 4)), &count_e),
            &count_e,
        );
        b.update(count, next).unwrap();
        (b.build().unwrap(), tick, count)
    }

    #[test]
    fn builder_happy_path() {
        let (sys, tick, count) = counter_system();
        assert_eq!(sys.name(), "counter");
        assert_eq!(sys.state_vars(), &[count]);
        assert_eq!(sys.input_vars(), &[tick]);
        assert!(sys.is_input(tick));
        assert!(!sys.is_input(count));
        assert_eq!(sys.initial_value(count), Value::Int(0));
        assert_eq!(sys.input_range(tick), (0, 1));
        assert_eq!(sys.all_vars().len(), 2);
    }

    #[test]
    fn builder_rejects_duplicates() {
        let mut b = SystemBuilder::new();
        b.input("x", Sort::Bool).unwrap();
        assert!(matches!(
            b.input("x", Sort::Bool),
            Err(BuildSystemError::DuplicateVariable { .. })
        ));
        assert!(matches!(
            b.state("x", Sort::Bool, Value::Bool(false)),
            Err(BuildSystemError::DuplicateVariable { .. })
        ));
    }

    #[test]
    fn builder_rejects_bad_init_and_ranges() {
        let mut b = SystemBuilder::new();
        assert!(matches!(
            b.state("c", Sort::int(4), Value::Int(100)),
            Err(BuildSystemError::InitOutOfRange { .. })
        ));
        assert!(matches!(
            b.input_in_range("i", Sort::int(4), 10, 3),
            Err(BuildSystemError::BadInputRange { .. })
        ));
        assert!(matches!(
            b.input_in_range("i", Sort::int(4), 0, 99),
            Err(BuildSystemError::BadInputRange { .. })
        ));
    }

    #[test]
    fn builder_rejects_bad_updates() {
        let mut b = SystemBuilder::new();
        let x = b.input("x", Sort::Bool).unwrap();
        let c = b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        assert!(matches!(
            b.update(x, Expr::true_()),
            Err(BuildSystemError::NotAStateVariable { .. })
        ));
        assert!(matches!(
            b.update(c, Expr::true_()),
            Err(BuildSystemError::UpdateSortMismatch { .. })
        ));
    }

    #[test]
    fn builder_requires_updates_and_state() {
        let mut b = SystemBuilder::new();
        b.state("c", Sort::int(4), Value::Int(0)).unwrap();
        assert!(matches!(
            b.build(),
            Err(BuildSystemError::MissingUpdate { .. })
        ));
        let mut b = SystemBuilder::new();
        b.input("x", Sort::Bool).unwrap();
        assert!(matches!(b.build(), Err(BuildSystemError::NoStateVariables)));
    }

    #[test]
    fn step_applies_updates_and_inputs() {
        let (sys, tick, count) = counter_system();
        let mut v = sys.initial_valuation();
        v.set(tick, Value::Bool(true));
        let next = sys.step(&v, &[(tick, Value::Bool(false))]);
        assert_eq!(next.value(count), Value::Int(1));
        assert_eq!(next.value(tick), Value::Bool(false));
        let next2 = sys.step(&next, &[(tick, Value::Bool(true))]);
        assert_eq!(next2.value(count), Value::Int(1));
    }

    #[test]
    fn counter_saturates() {
        let (sys, tick, count) = counter_system();
        let mut v = sys.initial_valuation();
        v.set(tick, Value::Bool(true));
        for _ in 0..40 {
            v = sys.step(&v, &[(tick, Value::Bool(true))]);
        }
        assert_eq!(v.value(count), Value::Int(15));
    }

    #[test]
    fn init_expr_and_satisfies_init() {
        let (sys, tick, _) = counter_system();
        let init = sys.initial_valuation();
        assert!(sys.satisfies_init(&init));
        let mut not_init = init.clone();
        not_init.set(tick, Value::Bool(true));
        // tick is an unconstrained input, so changing it keeps Init satisfied.
        assert!(sys.satisfies_init(&not_init));
        let count = sys.state_vars()[0];
        let mut bad = init;
        bad.set(count, Value::Int(3));
        assert!(!sys.satisfies_init(&bad));
    }

    #[test]
    fn transition_check() {
        let (sys, tick, count) = counter_system();
        let mut v = sys.initial_valuation();
        v.set(tick, Value::Bool(true));
        let next = sys.step(&v, &[(tick, Value::Bool(false))]);
        assert!(sys.is_transition(&v, &next));
        let mut wrong = next.clone();
        wrong.set(count, Value::Int(9));
        assert!(!sys.is_transition(&v, &wrong));
    }

    #[test]
    fn execution_trace_check() {
        let (sys, tick, _) = counter_system();
        let mut v = sys.initial_valuation();
        v.set(tick, Value::Bool(true));
        let mut obs = vec![v.clone()];
        for i in 0..5 {
            v = sys.step(&v, &[(tick, Value::Bool(i % 2 == 0))]);
            obs.push(v.clone());
        }
        let trace = Trace::new(obs);
        assert!(sys.is_execution_trace(&trace));

        let mut broken = trace.observations().to_vec();
        broken[3].set(sys.state_vars()[0], Value::Int(12));
        assert!(!sys.is_execution_trace(&Trace::new(broken)));
        assert!(sys.is_execution_trace(&Trace::new(vec![])));
    }

    #[test]
    fn input_range_constraint_expr() {
        let mut b = SystemBuilder::new();
        let temp = b.input_in_range("temp", Sort::int(8), 10, 90).unwrap();
        let s = b.state("s", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(50, 8));
        b.update(s, update).unwrap();
        let sys = b.build().unwrap();
        let c = sys.input_constraint(temp);
        let mut v = sys.initial_valuation();
        v.set(temp, Value::Int(50));
        assert!(c.eval_bool(&v));
        v.set(temp, Value::Int(5));
        assert!(!c.eval_bool(&v));
        v.set(temp, Value::Int(95));
        assert!(!c.eval_bool(&v));
        // Unrestricted boolean input yields `true`.
        let (sys2, tick, _) = {
            let (s, t, c) = counter_system();
            (s, t, c)
        };
        assert!(sys2.input_constraint(tick).is_true());
    }

    #[test]
    fn enum_state_builder() {
        let mode_sort = Sort::enumeration("Mode", ["Off", "On"]);
        let mut b = SystemBuilder::new();
        let mode = b.state_enum("mode", mode_sort.clone(), "Off").unwrap();
        let on = b.enum_const(mode, "On");
        b.update(mode, on).unwrap();
        let sys = b.build().unwrap();
        assert_eq!(sys.initial_value(mode), Value::Enum(0));
        let next = sys.step(&sys.initial_valuation(), &[]);
        assert_eq!(next.value(mode), Value::Enum(1));
    }
}
