//! Property-based tests for the system model and simulator.

use crate::{Simulator, SystemBuilder, Trace};
use amle_expr::{Expr, Sort, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small parametric family of systems: a mod-N counter with an enable input
/// and a boolean flag that observes a threshold.
fn counter_mod(n: i64) -> crate::System {
    let bits = 6;
    let mut b = SystemBuilder::new();
    b.name("counter_mod");
    let en = b.input("en", Sort::Bool).unwrap();
    let c = b.state("c", Sort::int(bits), Value::Int(0)).unwrap();
    let hi = b.state("hi", Sort::Bool, Value::Bool(false)).unwrap();
    let ce = b.var(c);
    let wrapped = ce
        .add(&Expr::int_val(1, bits))
        .ge(&Expr::int_val(n, bits))
        .ite(&Expr::int_val(0, bits), &ce.add(&Expr::int_val(1, bits)));
    let next_c = b.var(en).ite(&wrapped, &ce);
    b.update(c, next_c.clone()).unwrap();
    b.update(hi, next_c.ge(&Expr::int_val(n / 2, bits)))
        .unwrap();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_traces_are_always_execution_traces(n in 2i64..30, seed in 0u64..1000, len in 1usize..40) {
        let sys = counter_mod(n);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.random_trace(len, &mut rng);
        prop_assert_eq!(trace.len(), len);
        prop_assert!(sys.is_execution_trace(&trace));
    }

    #[test]
    fn prefixes_of_execution_traces_are_execution_traces(n in 2i64..20, seed in 0u64..500) {
        // Mirrors the paper's observation that the language of the learned
        // automaton must be prefix-closed because prefixes of execution
        // traces are execution traces.
        let sys = counter_mod(n);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.random_trace(25, &mut rng);
        for k in 0..=trace.len() {
            prop_assert!(sys.is_execution_trace(&trace.prefix(k)));
        }
    }

    #[test]
    fn counter_stays_below_modulus(n in 2i64..30, seed in 0u64..500) {
        let sys = counter_mod(n);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.random_trace(60, &mut rng);
        let c = sys.vars().lookup("c").unwrap();
        for obs in trace.observations() {
            prop_assert!(obs.value(c).to_i64() < n);
        }
    }

    #[test]
    fn step_determinism(n in 2i64..20, seed in 0u64..200) {
        let sys = counter_mod(n);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(seed);
        let v = sim.initial_with_random_inputs(&mut rng);
        let inputs = sim.sample_inputs(&mut rng);
        prop_assert_eq!(sys.step(&v, &inputs), sys.step(&v, &inputs));
    }

    #[test]
    fn corrupting_a_trace_is_detected(n in 4i64..20, seed in 0u64..200, at in 1usize..10, delta in 1i64..5) {
        let sys = counter_mod(n);
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = sim.random_trace(12, &mut rng);
        let c = sys.vars().lookup("c").unwrap();
        let mut obs = trace.observations().to_vec();
        let idx = at.min(obs.len() - 1);
        let old = obs[idx].value(c).to_i64();
        let forged = (old + delta) % n;
        prop_assume!(forged != old);
        obs[idx].set(c, Value::Int(forged));
        let corrupted = Trace::new(obs);
        // Either the corruption broke a transition before or after `idx`;
        // in all cases the trace must no longer validate.
        prop_assert!(!sys.is_execution_trace(&corrupted));
    }
}
