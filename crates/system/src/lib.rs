//! # amle-system
//!
//! The formal system model of the paper: `S = (X, X', R, Init)`.
//!
//! A [`System`] is a finite-state transition system over typed variables
//! (see `amle-expr`):
//!
//! * **state variables** have an initial value and an *update expression*
//!   that defines their next value as a function of the current valuation
//!   (this is the characteristic function of the transition relation `R`);
//! * **input variables** are unconstrained between steps (the environment
//!   picks a fresh value each step, optionally restricted to a declared
//!   range).
//!
//! The crate also provides [`Trace`] / [`TraceSet`] (sequences of
//! valuations, i.e. the execution traces the paper learns from), the
//! interned shared-prefix [`TraceStore`] the refinement loop accumulates
//! its traces in (counterexample splices, Section III-B, are O(1) segment
//! extensions there), and a [`Simulator`] that executes a system on randomly
//! sampled inputs to produce positive traces — the "instrumented
//! implementation under a random software load" of the paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use amle_expr::{Expr, Sort, Value};
//! use amle_system::{Simulator, SystemBuilder};
//! use rand::SeedableRng;
//!
//! // A saturating counter driven by a boolean input.
//! let mut b = SystemBuilder::new();
//! let tick = b.input("tick", Sort::Bool)?;
//! let count = b.state("count", Sort::int(4), Value::Int(0))?;
//! let count_e = b.var(count);
//! let next = b.var(tick).ite(
//!     &count_e.lt(&Expr::int_val(15, 4)).ite(&count_e.add(&Expr::int_val(1, 4)), &count_e),
//!     &count_e,
//! );
//! b.update(count, next)?;
//! let system = b.build()?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let trace = Simulator::new(&system).random_trace(20, &mut rng);
//! assert_eq!(trace.len(), 20);
//! assert!(system.is_execution_trace(&trace));
//! # Ok::<(), amle_system::BuildSystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simulate;
mod store;
mod system;
mod trace;
pub mod wire;

pub use simulate::Simulator;
pub use store::{ObsId, SegmentId, TraceId, TraceStore, TraceStoreStats};
pub use system::{BuildSystemError, System, SystemBuilder};
pub use trace::{Trace, TraceSet};

#[cfg(test)]
mod proptests;
