//! Random-input simulation: the trace-generation front end of the pipeline.

use crate::{System, Trace, TraceSet};
use amle_expr::{Valuation, Value, VarId};
use rand::Rng;

/// Executes a [`System`] on randomly sampled inputs to produce positive
/// execution traces.
///
/// This plays the role of running the instrumented implementation under a
/// random software load in the paper's evaluation (Section IV-B generates 50
/// random traces of length 50 per benchmark; Section IV-C uses a much larger
/// random budget for the passive baseline).
#[derive(Debug, Clone, Copy)]
pub struct Simulator<'a> {
    system: &'a System,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given system.
    pub fn new(system: &'a System) -> Self {
        Simulator { system }
    }

    /// The system being simulated.
    pub fn system(&self) -> &System {
        self.system
    }

    /// Samples a value for every input variable uniformly from its range.
    pub fn sample_inputs<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(VarId, Value)> {
        self.system
            .input_vars()
            .iter()
            .map(|id| {
                let (lo, hi) = self.system.input_range(*id);
                let raw = rng.gen_range(lo..=hi);
                (*id, Value::from_i64(self.system.vars().sort(*id), raw))
            })
            .collect()
    }

    /// Produces one random execution trace with `length` observations.
    ///
    /// The trace starts from the system's initial valuation with randomly
    /// sampled inputs, matching the paper's definition of a positive trace
    /// (its first observation is one transition away from an `Init` state).
    pub fn random_trace<R: Rng + ?Sized>(&self, length: usize, rng: &mut R) -> Trace {
        let mut trace = Trace::default();
        if length == 0 {
            return trace;
        }
        let mut current = self.initial_with_random_inputs(rng);
        // First observation: the successor of the initial valuation.
        current = self.system.step(&current, &self.sample_inputs(rng));
        trace.push(current.clone());
        for _ in 1..length {
            current = self.system.step(&current, &self.sample_inputs(rng));
            trace.push(current.clone());
        }
        trace
    }

    /// Produces `count` random traces of `length` observations each.
    pub fn random_traces<R: Rng + ?Sized>(
        &self,
        count: usize,
        length: usize,
        rng: &mut R,
    ) -> TraceSet {
        let mut set = TraceSet::new();
        for _ in 0..count {
            set.insert(self.random_trace(length, rng));
        }
        set
    }

    /// Produces traces until approximately `total_inputs` random input
    /// samples have been consumed, in chunks of `length`-observation traces.
    ///
    /// This is the workload shape of the paper's random-sampling baseline
    /// (Section IV-C), parameterised so the budget can be scaled.
    pub fn random_traces_with_budget<R: Rng + ?Sized>(
        &self,
        total_inputs: usize,
        length: usize,
        rng: &mut R,
    ) -> TraceSet {
        let mut set = TraceSet::new();
        let mut used = 0usize;
        while used < total_inputs {
            set.insert(self.random_trace(length, rng));
            used += length.max(1);
        }
        set
    }

    /// The system's initial valuation with inputs replaced by random samples.
    pub fn initial_with_random_inputs<R: Rng + ?Sized>(&self, rng: &mut R) -> Valuation {
        let mut v = self.system.initial_valuation();
        for (id, value) in self.sample_inputs(rng) {
            v.set(id, value);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;
    use amle_expr::{Expr, Sort};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn thermostat() -> System {
        let mut b = SystemBuilder::new();
        b.name("thermostat");
        let temp = b.input_in_range("temp", Sort::int(8), 0, 120).unwrap();
        let on = b.state("on", Sort::Bool, Value::Bool(false)).unwrap();
        let update = b.var(temp).gt(&Expr::int_val(75, 8));
        b.update(on, update).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn random_traces_are_execution_traces() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let trace = sim.random_trace(30, &mut rng);
            assert_eq!(trace.len(), 30);
            assert!(sys.is_execution_trace(&trace));
        }
    }

    #[test]
    fn sampled_inputs_respect_ranges() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            for (id, value) in sim.sample_inputs(&mut rng) {
                let (lo, hi) = sys.input_range(id);
                assert!(value.to_i64() >= lo && value.to_i64() <= hi);
            }
        }
    }

    #[test]
    fn trace_generation_is_deterministic_per_seed() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        let t1 = sim.random_trace(20, &mut StdRng::seed_from_u64(7));
        let t2 = sim.random_trace(20, &mut StdRng::seed_from_u64(7));
        let t3 = sim.random_trace(20, &mut StdRng::seed_from_u64(8));
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn trace_set_sizes() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(3);
        let set = sim.random_traces(5, 10, &mut rng);
        assert!(set.len() <= 5);
        assert!(set.total_observations() <= 50);
        let budget = sim.random_traces_with_budget(100, 10, &mut rng);
        assert!(budget.total_observations() >= 100 || budget.len() >= 10);
    }

    #[test]
    fn zero_length_trace_is_empty() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sim.random_trace(0, &mut rng).is_empty());
    }

    #[test]
    fn simulator_exposes_system() {
        let sys = thermostat();
        let sim = Simulator::new(&sys);
        assert_eq!(sim.system().name(), "thermostat");
    }
}
