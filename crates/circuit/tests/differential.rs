//! Differential test: learning from a cone-of-influence-reduced circuit
//! produces the same model as learning from the full circuit.
//!
//! This is the committed-fixture counterpart of the generator-driven
//! proptest in `src/proptests.rs`, and the invariant the benchmark harness
//! relies on: `suite --circuits` learns from the *reduced* system while
//! reporting the full netlist's statistics, which is only honest if the
//! reduction cannot change what is learned.

use amle_circuit::{compile, fixture, reduce_to_coi, Netlist, FIXTURES};
use amle_core::{ActiveLearner, ActiveLearnerConfig, ParallelConfig};
use amle_learner::HistoryLearner;

/// Learns a model and returns its semantic fingerprint with the rendered
/// `Init(X)` antecedent normalised away: that formula enumerates every state
/// variable of the *system*, including latches outside the cone, so it is
/// the one fingerprint fragment that legitimately differs between the full
/// and the reduced circuit. Everything else — the abstraction, the
/// invariants' conclusions, the verdict trajectory — must be byte-identical.
fn learned_fingerprint(netlist: &Netlist) -> String {
    let compiled = compile(netlist).expect("fixture netlists compile");
    let config = ActiveLearnerConfig {
        observables: Some(compiled.observables()),
        initial_traces: 6,
        trace_length: 8,
        k: 4,
        max_iterations: 3,
        parallel: ParallelConfig::with_workers(1),
        ..Default::default()
    };
    let report = ActiveLearner::new(&compiled.system, HistoryLearner::default(), config)
        .run()
        .expect("active learning run failed");
    let vars = compiled.system.vars();
    let init = amle_automaton::display_expr(&compiled.system.init_expr(), vars);
    report.semantic_fingerprint(vars).replace(
        &format!("invariant: {init} && R(X, X')"),
        "invariant: Init(X) && R(X, X')",
    )
}

#[test]
fn coi_reduction_preserves_the_learned_model_on_every_fixture() {
    for fx in FIXTURES {
        let netlist = fx.parse().unwrap_or_else(|e| panic!("{}: {e}", fx.name));
        let (reduced, _) = reduce_to_coi(&netlist);
        assert_eq!(
            learned_fingerprint(&netlist),
            learned_fingerprint(&reduced),
            "{}: learning diverged between the full and the COI-reduced circuit",
            fx.name
        );
    }
}

#[test]
fn the_reducible_fixture_actually_exercises_the_reduction() {
    // The blanket fixture loop above would pass vacuously if every fixture
    // were already its own cone; pin that the corpus contains a circuit
    // where reduction really drops logic.
    let netlist = fixture("coi_demo")
        .expect("coi_demo fixture exists")
        .parse()
        .unwrap();
    let (reduced, stats) = reduce_to_coi(&netlist);
    assert!(stats.gates_dropped() > 0, "coi_demo drops no gates");
    assert!(stats.latches_dropped() > 0, "coi_demo drops no latches");
    assert!(reduced.latches.len() < netlist.latches.len());
    // Inputs are never dropped: the learner's trace generator draws one
    // random value per input per step, so removing an input would shift the
    // stream and break fingerprint equality.
    assert_eq!(reduced.inputs, netlist.inputs);
}
