//! Malformed-input battery for both circuit parsers.
//!
//! Every case pins the *typed* [`ParseError`] variant (and, where it exists,
//! the reported source line) so error reporting cannot silently regress into
//! a different — or worse, a panicking — failure mode. The parsers' contract
//! is that no byte sequence panics; the battery covers truncations, bad and
//! out-of-range literals, duplicate and undefined definitions, unsupported
//! constructs, grammar violations, combinational cycles and non-UTF-8 bytes.

use amle_circuit::{parse_aag, parse_bench, ParseError};

fn aag(bytes: &[u8]) -> ParseError {
    match parse_aag(bytes, "malformed") {
        Ok(n) => panic!("expected a parse error, got a netlist: {n:?}"),
        Err(e) => {
            // Every error must render through Display without panicking.
            let _ = e.to_string();
            e
        }
    }
}

fn bench(bytes: &[u8]) -> ParseError {
    match parse_bench(bytes, "malformed") {
        Ok(n) => panic!("expected a parse error, got a netlist: {n:?}"),
        Err(e) => {
            let _ = e.to_string();
            e
        }
    }
}

// ---------------------------------------------------------------- AIGER ----

#[test]
fn aag_rejects_non_utf8_bytes() {
    assert_eq!(
        aag(b"aag 1 1 0 0 0\n\xff\xfe"),
        ParseError::NotUtf8 { offset: 14 }
    );
    // Invalid bytes before the header are reported at offset 0.
    assert_eq!(aag(b"\xc3\x28"), ParseError::NotUtf8 { offset: 0 });
}

#[test]
fn aag_rejects_empty_input() {
    assert!(matches!(aag(b""), ParseError::Truncated { .. }));
}

#[test]
fn aag_rejects_the_binary_format() {
    let err = aag(b"aig 1 1 0 0 0\n");
    let ParseError::BadHeader { line: 1, reason } = err else {
        panic!("expected BadHeader, got {err:?}");
    };
    assert!(reason.contains("binary"), "unpointed message: {reason}");
}

#[test]
fn aag_rejects_malformed_headers() {
    // Wrong magic word.
    assert!(matches!(
        aag(b"hello world\n"),
        ParseError::BadHeader { line: 1, .. }
    ));
    // Too few counts.
    assert!(matches!(
        aag(b"aag 1 1\n"),
        ParseError::BadHeader { line: 1, .. }
    ));
    // The 1.9 extended sections (B/C/J/F) are unsupported.
    assert!(matches!(
        aag(b"aag 1 1 0 0 0 0\n"),
        ParseError::BadHeader { line: 1, .. }
    ));
    // Non-numeric count.
    assert!(matches!(
        aag(b"aag 1 x 0 0 0\n"),
        ParseError::BadToken { line: 1, .. }
    ));
    // M must cover I + L + A.
    assert!(matches!(
        aag(b"aag 0 1 0 0 0\n2\n"),
        ParseError::BadHeader { line: 1, .. }
    ));
}

#[test]
fn aag_reports_truncation_per_missing_section() {
    // Header promises one input, one latch, one output, one gate; cut the
    // file off at each point in turn.
    for (text, expected_fragment) in [
        ("aag 3 1 1 1 1\n", "input"),
        ("aag 3 1 1 1 1\n2\n", "latch"),
        ("aag 3 1 1 1 1\n2\n4 6\n", "output"),
        ("aag 3 1 1 1 1\n2\n4 6\n4\n", "and-gate"),
    ] {
        let err = aag(text.as_bytes());
        let ParseError::Truncated { expected } = err else {
            panic!("`{text}`: expected Truncated, got {err:?}");
        };
        assert!(
            expected.contains(expected_fragment),
            "`{text}`: truncation names `{expected}`, expected `{expected_fragment}`"
        );
    }
}

#[test]
fn aag_rejects_bad_literal_tokens() {
    assert!(matches!(
        aag(b"aag 1 1 0 0 0\nx\n"),
        ParseError::BadToken { line: 2, .. }
    ));
    // Negative literals are not unsigned numbers.
    assert!(matches!(
        aag(b"aag 1 1 0 0 0\n-2\n"),
        ParseError::BadToken { line: 2, .. }
    ));
}

#[test]
fn aag_rejects_out_of_range_literals() {
    // M = 1 admits literals up to 3; literal 5 is variable 2.
    assert_eq!(
        aag(b"aag 1 1 0 1 0\n2\n5\n"),
        ParseError::OutOfRangeLiteral {
            line: 3,
            literal: 5,
            max: 3
        }
    );
}

#[test]
fn aag_rejects_undefinable_literals() {
    // An input definition must be an even, non-constant literal.
    assert_eq!(
        aag(b"aag 1 1 0 0 0\n3\n"),
        ParseError::ExpectedDefinableLiteral {
            line: 2,
            literal: 3
        }
    );
    assert_eq!(
        aag(b"aag 1 1 0 0 0\n0\n"),
        ParseError::ExpectedDefinableLiteral {
            line: 2,
            literal: 0
        }
    );
}

#[test]
fn aag_rejects_duplicate_definitions() {
    // Both inputs claim variable 1.
    let err = aag(b"aag 2 2 0 0 0\n2\n2\n");
    assert!(matches!(
        err,
        ParseError::DuplicateDefinition { line: 3, .. }
    ));
    // A latch claiming an input's variable is the same offence.
    let err = aag(b"aag 2 1 1 0 0\n2\n2 4\n");
    assert!(matches!(
        err,
        ParseError::DuplicateDefinition { line: 3, .. }
    ));
}

#[test]
fn aag_rejects_undefined_references() {
    // Output references variable 2, which nothing defines.
    let err = aag(b"aag 2 1 0 1 0\n2\n4\n");
    assert!(matches!(err, ParseError::UndefinedSignal { line: 3, .. }));
}

#[test]
fn aag_rejects_unsupported_latch_resets() {
    // AIGER 1.9 allows `init = current` to mean "uninitialized"; the
    // compiler needs a concrete reset, so anything but 0/1 is an error.
    let err = aag(b"aag 1 0 1 1 0\n2 2 2\n2\n");
    assert!(matches!(err, ParseError::BadLatchInit { line: 2, .. }));
}

#[test]
fn aag_rejects_malformed_lines() {
    // An input line is exactly one literal.
    assert!(matches!(
        aag(b"aag 2 1 0 0 0\n2 4\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // A latch line is `current next [init]`.
    assert!(matches!(
        aag(b"aag 1 0 1 0 0\n2\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // An and-gate line is `lhs rhs0 rhs1`.
    assert!(matches!(
        aag(b"aag 2 1 0 0 1\n2\n4 2\n"),
        ParseError::BadSyntax { line: 3, .. }
    ));
}

#[test]
fn aag_rejects_malformed_symbol_entries() {
    // Unknown position kind.
    assert!(matches!(
        aag(b"aag 1 1 0 0 0\n2\nz0 name\n"),
        ParseError::BadSymbol { line: 3, .. }
    ));
    // Position out of range.
    assert!(matches!(
        aag(b"aag 1 1 0 0 0\n2\ni5 name\n"),
        ParseError::BadSymbol { line: 3, .. }
    ));
    // No name at all.
    assert!(matches!(
        aag(b"aag 1 1 0 0 0\n2\ni0\n"),
        ParseError::BadSymbol { line: 3, .. }
    ));
}

#[test]
fn aag_rejects_name_collisions_from_the_symbol_table() {
    // Two positions renamed to the same signal name trip IR validation.
    let err = aag(b"aag 2 2 0 0 0\n2\n4\ni0 x\ni1 x\n");
    assert!(matches!(err, ParseError::DuplicateName { .. }));
}

// --------------------------------------------------------------- .bench ----

#[test]
fn bench_rejects_non_utf8_bytes() {
    assert_eq!(bench(b"INPUT(a)\n\xff"), ParseError::NotUtf8 { offset: 9 });
}

#[test]
fn bench_rejects_unknown_operators() {
    assert!(matches!(
        bench(b"INPUT(a)\ng = MUX(a, a, a)\n"),
        ParseError::UnsupportedGate { line: 2, .. }
    ));
}

#[test]
fn bench_rejects_wrong_arities() {
    // NOT takes one fanin.
    assert!(matches!(
        bench(b"INPUT(a)\nINPUT(b)\ng = NOT(a, b)\nOUTPUT(g)\n"),
        ParseError::BadArity { got: 2, .. }
    ));
    // XOR takes exactly two.
    assert!(matches!(
        bench(b"INPUT(a)\ng = XOR(a)\nOUTPUT(g)\n"),
        ParseError::BadArity { got: 1, .. }
    ));
    // AND needs at least one.
    assert!(matches!(
        bench(b"g = AND()\nOUTPUT(g)\n"),
        ParseError::BadArity { got: 0, .. }
    ));
    // DFF takes exactly one.
    assert!(matches!(
        bench(b"INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n"),
        ParseError::BadArity { got: 2, .. }
    ));
}

#[test]
fn bench_rejects_duplicate_definitions() {
    assert!(matches!(
        bench(b"INPUT(a)\nINPUT(a)\n"),
        ParseError::DuplicateDefinition { line: 2, .. }
    ));
    assert!(matches!(
        bench(b"INPUT(a)\na = NOT(a)\n"),
        ParseError::DuplicateDefinition { line: 2, .. }
    ));
    assert!(matches!(
        bench(b"INPUT(a)\ng = NOT(a)\ng = BUFF(a)\n"),
        ParseError::DuplicateDefinition { line: 3, .. }
    ));
}

#[test]
fn bench_rejects_undefined_references() {
    assert!(matches!(
        bench(b"g = AND(a, b)\n"),
        ParseError::UndefinedSignal { line: 1, .. }
    ));
    assert!(matches!(
        bench(b"OUTPUT(ghost)\n"),
        ParseError::UndefinedSignal { line: 1, .. }
    ));
    assert!(matches!(
        bench(b"q = DFF(nothing)\n"),
        ParseError::UndefinedSignal { line: 1, .. }
    ));
}

#[test]
fn bench_rejects_combinational_cycles() {
    // A two-gate loop with no latch on it.
    let err = bench(b"INPUT(x)\na = AND(b, x)\nb = BUFF(a)\nOUTPUT(b)\n");
    assert!(matches!(err, ParseError::CombinationalCycle { .. }));
    // A self-loop is the degenerate case.
    let err = bench(b"INPUT(x)\na = AND(a, x)\nOUTPUT(a)\n");
    assert!(matches!(err, ParseError::CombinationalCycle { .. }));
    // The same loop through a DFF is fine — latches break cycles.
    assert!(parse_bench(b"INPUT(x)\na = AND(b, x)\nb = DFF(a)\nOUTPUT(b)\n", "ok").is_ok());
}

#[test]
fn bench_rejects_grammar_violations() {
    // Missing parentheses.
    assert!(matches!(
        bench(b"INPUT a\n"),
        ParseError::BadSyntax { line: 1, .. }
    ));
    // Unclosed parenthesis.
    assert!(matches!(
        bench(b"INPUT(a)\ng = AND(a\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // Trailing junk after the close.
    assert!(matches!(
        bench(b"INPUT(a)\ng = AND(a) extra\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // Missing assignment target.
    assert!(matches!(
        bench(b"INPUT(a)\n= AND(a)\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // Empty argument.
    assert!(matches!(
        bench(b"INPUT(a)\ng = AND(a,)\n"),
        ParseError::BadSyntax { line: 2, .. }
    ));
    // INPUT takes exactly one signal.
    assert!(matches!(
        bench(b"INPUT(a, b)\n"),
        ParseError::BadSyntax { line: 1, .. }
    ));
    // A bare unknown statement.
    assert!(matches!(
        bench(b"FLIP(a)\n"),
        ParseError::BadSyntax { line: 1, .. }
    ));
}

/// Neither parser panics on arbitrary prefixes of a valid file — a cheap
/// deterministic fuzz over every truncation point, in both formats.
#[test]
fn truncation_sweep_never_panics() {
    let aag_text = b"aag 3 1 1 1 1\n2\n4 6\n4\n6 2 4\ni0 en\nl0 q\no0 out\nc\nnote\n";
    for cut in 0..aag_text.len() {
        let _ = parse_aag(&aag_text[..cut], "sweep");
    }
    let bench_text = b"# t\nINPUT(en)\nOUTPUT(q)\nd = XOR(en, q)\nq = DFF(d)\n";
    for cut in 0..bench_text.len() {
        let _ = parse_bench(&bench_text[..cut], "sweep");
    }
}
