//! Golden tests over the committed circuit fixtures.
//!
//! Every fixture's parsed [`amle_circuit::Netlist`] is pinned as a debug
//! snapshot under `tests/snapshots/`, and the emitters are pinned through a
//! printer round trip: parse → emit → parse must reproduce the IR exactly,
//! and the emitted text itself is snapshotted so accidental printer drift
//! shows up as a reviewable diff.
//!
//! To regenerate the snapshots after an intentional IR or printer change:
//!
//! ```text
//! AMLE_BLESS=1 cargo test -p amle-circuit --test golden
//! ```

use amle_circuit::{emit_aag, emit_bench, parse_aag, parse_bench, FixtureFormat, FIXTURES};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

fn snapshot_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(file)
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot when `AMLE_BLESS` is set.
fn check_snapshot(file: &str, actual: &str) {
    let path = snapshot_path(file);
    if std::env::var_os("AMLE_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create snapshot dir");
        fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run `AMLE_BLESS=1 cargo test -p amle-circuit --test golden`",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "snapshot `{file}` drifted; if the change is intentional, re-bless with \
         `AMLE_BLESS=1 cargo test -p amle-circuit --test golden`"
    );
}

#[test]
fn fixture_netlists_match_their_snapshots() {
    for fixture in FIXTURES {
        let netlist = fixture
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", fixture.name));
        let mut rendered = String::new();
        writeln!(rendered, "{netlist:#?}").unwrap();
        check_snapshot(&format!("{}.netlist.txt", fixture.name), &rendered);
    }
}

#[test]
fn fixture_emit_is_stable_and_round_trips() {
    for fixture in FIXTURES {
        let netlist = fixture
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", fixture.name));
        let (emitted, extension) = match fixture.format {
            FixtureFormat::Aag => (
                emit_aag(&netlist).unwrap_or_else(|e| panic!("{}: {e}", fixture.name)),
                "aag",
            ),
            FixtureFormat::Bench => (
                emit_bench(&netlist).unwrap_or_else(|e| panic!("{}: {e}", fixture.name)),
                "bench",
            ),
        };
        // The emitted text is itself pinned...
        check_snapshot(&format!("{}.emitted.{extension}", fixture.name), &emitted);
        // ...and parsing it back reproduces the IR exactly.
        let reparsed = match fixture.format {
            FixtureFormat::Aag => parse_aag(emitted.as_bytes(), fixture.name),
            FixtureFormat::Bench => parse_bench(emitted.as_bytes(), fixture.name),
        }
        .unwrap_or_else(|e| panic!("{}: emitted text failed to re-parse: {e}", fixture.name));
        assert_eq!(
            reparsed, netlist,
            "{}: parse ∘ emit is not the identity",
            fixture.name
        );
    }
}
