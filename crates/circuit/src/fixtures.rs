//! The embedded circuit fixtures.
//!
//! Five small, hand-written circuits — committed under `fixtures/` and
//! compiled into the binary — that the suite registers as the `--circuits`
//! benchmark family and the golden tests snapshot:
//!
//! | name       | format   | what it is                                        |
//! |------------|----------|---------------------------------------------------|
//! | `counter3` | `.aag`   | 3-bit enabled counter (xor/carry AND clusters)    |
//! | `shift4`   | `.bench` | 4-bit shift register with a parity tap            |
//! | `traffic`  | `.bench` | green → yellow → red controller, advancing on adv |
//! | `lfsr3`    | `.aag`   | 3-bit Fibonacci LFSR with enable, seeded at 001   |
//! | `coi_demo` | `.bench` | observed toggle + dead debug pipeline (COI bait)  |
//!
//! `coi_demo` exists to prove the cone-of-influence pass earns its keep: its
//! three `dbg*` latches and two junk gates feed no output and must show up
//! as dropped in the reported [`crate::NetlistStats`].

use crate::aiger::parse_aag;
use crate::bench_fmt::parse_bench;
use crate::netlist::{Netlist, ParseError};

/// The on-disk format of a fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixtureFormat {
    /// ASCII AIGER.
    Aag,
    /// ISCAS `.bench`.
    Bench,
}

/// One embedded circuit fixture.
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Fixture (and benchmark) name.
    pub name: &'static str,
    /// Source format.
    pub format: FixtureFormat,
    /// The committed file contents.
    pub text: &'static str,
}

impl Fixture {
    /// Parses the fixture with the format's parser.
    ///
    /// # Errors
    ///
    /// Propagates the parser's [`ParseError`]; the committed fixtures never
    /// fail (pinned by the golden tests).
    pub fn parse(&self) -> Result<Netlist, ParseError> {
        match self.format {
            FixtureFormat::Aag => parse_aag(self.text.as_bytes(), self.name),
            FixtureFormat::Bench => parse_bench(self.text.as_bytes(), self.name),
        }
    }
}

/// All embedded fixtures, in registration order.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "counter3",
        format: FixtureFormat::Aag,
        text: include_str!("../fixtures/counter3.aag"),
    },
    Fixture {
        name: "shift4",
        format: FixtureFormat::Bench,
        text: include_str!("../fixtures/shift4.bench"),
    },
    Fixture {
        name: "traffic",
        format: FixtureFormat::Bench,
        text: include_str!("../fixtures/traffic.bench"),
    },
    Fixture {
        name: "lfsr3",
        format: FixtureFormat::Aag,
        text: include_str!("../fixtures/lfsr3.aag"),
    },
    Fixture {
        name: "coi_demo",
        format: FixtureFormat::Bench,
        text: include_str!("../fixtures/coi_demo.bench"),
    },
];

/// Looks a fixture up by name.
pub fn fixture(name: &str) -> Option<&'static Fixture> {
    FIXTURES.iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coi::coi_stats;
    use crate::compile::compile;

    #[test]
    fn every_fixture_parses_and_compiles() {
        for fixture in FIXTURES {
            let netlist = fixture.parse().unwrap_or_else(|e| {
                panic!("fixture {} does not parse: {e}", fixture.name);
            });
            compile(&netlist).unwrap_or_else(|e| {
                panic!("fixture {} does not compile: {e}", fixture.name);
            });
        }
    }

    #[test]
    fn coi_demo_is_actually_reducible() {
        let netlist = fixture("coi_demo").unwrap().parse().unwrap();
        let stats = coi_stats(&netlist);
        assert_eq!(stats.latches_total, 4);
        assert_eq!(stats.latches_in_coi, 1);
        assert_eq!(stats.gates_total, 3);
        assert_eq!(stats.gates_in_coi, 1);
    }

    #[test]
    fn the_other_fixtures_are_fully_in_cone() {
        for name in ["counter3", "shift4", "traffic", "lfsr3"] {
            let netlist = fixture(name).unwrap().parse().unwrap();
            let stats = coi_stats(&netlist);
            assert_eq!(stats.gates_dropped(), 0, "{name}");
            assert_eq!(stats.latches_dropped(), 0, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(fixture("traffic").map(|f| f.name), Some("traffic"));
        assert!(fixture("nope").is_none());
    }
}
