//! Seeded random netlist generation for the differential test corpus.
//!
//! The generator is deterministic (splitmix64 over the caller's seed — the
//! same idiom as the synthetic benchmark families) and produces netlists
//! that stay inside the chosen format's expressible fragment, so the
//! proptests can assert that parse ∘ emit is the identity on the IR:
//!
//! * [`GenFlavor::Aig`] — two-input AND gates only, negation on edges,
//!   constants allowed, latch resets 0 or 1, canonical `a{index}` gate
//!   names (AIGER cannot store gate names, so round-tripping requires them).
//! * [`GenFlavor::Bench`] — the full named-operator set, no negated edges or
//!   constants, latch resets 0, outputs observing (and named after) plain
//!   signals.
//!
//! Every netlist has at least one input and one latch, and the first output
//! always observes a latch — so the netlist compiles to a system with state
//! even after cone-of-influence reduction.

use crate::netlist::{Gate, GateOp, Latch, Lit, Netlist, NodeRef, Output};

/// The splitmix64 generator: tiny, seedable, deterministic across platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform boolean.
    pub fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Which format fragment the generated netlist must stay inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenFlavor {
    /// And-inverter graphs: the AIGER-expressible fragment.
    Aig,
    /// Named-operator netlists: the `.bench`-expressible fragment.
    Bench,
}

/// Generates a small random netlist, deterministically from `seed`.
///
/// The result always passes [`Netlist::validate`] and survives an
/// emit/parse round-trip in the chosen flavor's format unchanged.
pub fn random_netlist(seed: u64, flavor: GenFlavor) -> Netlist {
    let mut rng = SplitMix64::new(seed ^ 0xC1C0_17F0_0D5E_EDED);
    let num_inputs = 1 + rng.below(3);
    let num_latches = 1 + rng.below(3);
    let num_gates = rng.below(9);

    // Nodes a gate at position `gate_count` may reference (acyclic by
    // construction: only earlier gates).
    let pick_node = |rng: &mut SplitMix64, gate_count: usize, allow_const: bool| -> NodeRef {
        let pool = num_inputs + num_latches + gate_count + usize::from(allow_const);
        let choice = rng.below(pool);
        if choice < num_inputs {
            NodeRef::Input(choice)
        } else if choice < num_inputs + num_latches {
            NodeRef::Latch(choice - num_inputs)
        } else if choice < num_inputs + num_latches + gate_count {
            NodeRef::Gate(choice - num_inputs - num_latches)
        } else {
            NodeRef::Const
        }
    };
    let pick_lit = |rng: &mut SplitMix64, gate_count: usize| -> Lit {
        match flavor {
            GenFlavor::Aig => {
                let node = pick_node(rng, gate_count, true);
                let negated = rng.flag();
                Lit { node, negated }
            }
            GenFlavor::Bench => Lit::of(pick_node(rng, gate_count, false)),
        }
    };

    let mut gates = Vec::with_capacity(num_gates);
    for index in 0..num_gates {
        let (name, op) = match flavor {
            GenFlavor::Aig => (format!("a{index}"), GateOp::And),
            GenFlavor::Bench => {
                const OPS: [GateOp; 8] = [
                    GateOp::And,
                    GateOp::Or,
                    GateOp::Nand,
                    GateOp::Nor,
                    GateOp::Xor,
                    GateOp::Xnor,
                    GateOp::Not,
                    GateOp::Buf,
                ];
                (format!("g{index}"), OPS[rng.below(OPS.len())])
            }
        };
        let arity = match (flavor, op) {
            (GenFlavor::Aig, _) => 2,
            (_, GateOp::Xor | GateOp::Xnor) => 2,
            (_, GateOp::Not | GateOp::Buf) => 1,
            _ => 1 + rng.below(3),
        };
        let fanins = (0..arity).map(|_| pick_lit(&mut rng, index)).collect();
        gates.push(Gate { name, op, fanins });
    }

    let latches = (0..num_latches)
        .map(|index| Latch {
            name: format!("l{index}"),
            init: flavor == GenFlavor::Aig && rng.flag(),
            next: pick_lit(&mut rng, num_gates),
        })
        .collect();

    let outputs = match flavor {
        GenFlavor::Aig => (0..1 + rng.below(2))
            .map(|index| Output {
                name: format!("o{index}"),
                // The first output always observes a latch so the cone of
                // influence retains state (a purely combinational cone would
                // compile to a system without state variables).
                driver: if index == 0 {
                    Lit {
                        node: NodeRef::Latch(rng.below(num_latches)),
                        negated: rng.flag(),
                    }
                } else {
                    pick_lit(&mut rng, num_gates)
                },
            })
            .collect(),
        GenFlavor::Bench => {
            // Observe distinct plain signals, named after themselves. Always
            // include a latch so the observed behaviour is sequential.
            let mut drivers = vec![NodeRef::Latch(rng.below(num_latches))];
            let extra = pick_node(&mut rng, num_gates, false);
            if !matches!(extra, NodeRef::Input(_)) && !drivers.contains(&extra) && rng.flag() {
                drivers.push(extra);
            }
            drivers
                .into_iter()
                .map(|node| Output {
                    name: match node {
                        NodeRef::Latch(i) => format!("l{i}"),
                        NodeRef::Gate(i) => format!("g{i}"),
                        _ => unreachable!("bench outputs observe latches or gates"),
                    },
                    driver: Lit::of(node),
                })
                .collect()
        }
    };

    let netlist = Netlist {
        name: format!("gen{seed}"),
        inputs: (0..num_inputs).map(|i| format!("i{i}")).collect(),
        latches,
        gates,
        outputs,
    };
    debug_assert_eq!(netlist.validate(), Ok(()));
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aiger::{emit_aag, parse_aag};
    use crate::bench_fmt::{emit_bench, parse_bench};
    use crate::compile::compile;

    #[test]
    fn generated_netlists_validate_and_compile() {
        for seed in 0..64 {
            for flavor in [GenFlavor::Aig, GenFlavor::Bench] {
                let n = random_netlist(seed, flavor);
                assert_eq!(n.validate(), Ok(()), "seed {seed} {flavor:?}");
                compile(&n).unwrap_or_else(|e| panic!("seed {seed} {flavor:?}: {e}"));
            }
        }
    }

    #[test]
    fn aig_flavor_round_trips() {
        for seed in 0..64 {
            let n = random_netlist(seed, GenFlavor::Aig);
            let emitted = emit_aag(&n).unwrap();
            let back = parse_aag(emitted.as_bytes(), n.name.clone()).unwrap();
            assert_eq!(n, back, "seed {seed}");
        }
    }

    #[test]
    fn bench_flavor_round_trips() {
        for seed in 0..64 {
            let n = random_netlist(seed, GenFlavor::Bench);
            let emitted = emit_bench(&n).unwrap();
            let back = parse_bench(emitted.as_bytes(), n.name.clone()).unwrap();
            assert_eq!(n, back, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            random_netlist(7, GenFlavor::Bench),
            random_netlist(7, GenFlavor::Bench)
        );
    }
}
