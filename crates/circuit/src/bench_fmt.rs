//! ISCAS-85/89 `.bench` reader and writer.
//!
//! The format: `#` starts a comment, `INPUT(x)` declares a primary input,
//! `OUTPUT(x)` observes signal `x`, and `g = OP(a, b, ...)` defines a gate.
//! `DFF` defines a latch (ISCAS-89 sequential netlists); the supported
//! combinational operators are `AND`, `OR`, `NAND`, `NOR`, `XOR`, `XNOR`,
//! `NOT` and `BUFF` (the spelling `BUF` is also accepted).
//!
//! Signals may be referenced before they are defined — the reader resolves
//! names in a second pass — and every malformed input produces a typed
//! [`ParseError`], never a panic: undefined or doubly-defined signals, bad
//! operator keywords, wrong arities and combinational cycles (which `.bench`
//! can express, unlike AIGER's numbered and-gates) are all reported with
//! their source line where one exists.

use crate::aiger::EmitError;
use crate::netlist::{Gate, GateOp, Latch, Lit, Netlist, NodeRef, Output, ParseError};
use std::collections::HashMap;

fn gate_op(keyword: &str) -> Option<GateOp> {
    match keyword.to_ascii_uppercase().as_str() {
        "AND" => Some(GateOp::And),
        "OR" => Some(GateOp::Or),
        "NAND" => Some(GateOp::Nand),
        "NOR" => Some(GateOp::Nor),
        "XOR" => Some(GateOp::Xor),
        "XNOR" => Some(GateOp::Xnor),
        "NOT" => Some(GateOp::Not),
        "BUFF" | "BUF" => Some(GateOp::Buf),
        _ => None,
    }
}

/// `OP(a, b, c)` → `("OP", ["a", "b", "c"])`.
fn call_form(text: &str, line: usize) -> Result<(&str, Vec<&str>), ParseError> {
    let open = text.find('(').ok_or_else(|| ParseError::BadSyntax {
        line,
        reason: format!("expected `OP(...)`, got `{text}`"),
    })?;
    let close = text.rfind(')').ok_or_else(|| ParseError::BadSyntax {
        line,
        reason: format!("unclosed parenthesis in `{text}`"),
    })?;
    if close < open || !text[close + 1..].trim().is_empty() {
        return Err(ParseError::BadSyntax {
            line,
            reason: format!("trailing junk after `)` in `{text}`"),
        });
    }
    let keyword = text[..open].trim();
    let inner = text[open + 1..close].trim();
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(str::trim).collect()
    };
    if args.iter().any(|a| a.is_empty()) {
        return Err(ParseError::BadSyntax {
            line,
            reason: format!("empty argument in `{text}`"),
        });
    }
    Ok((keyword, args))
}

/// Parses an ISCAS `.bench` document into the shared [`Netlist`] IR.
///
/// `name` becomes [`Netlist::name`]. Inputs, latches (`DFF`), gates and
/// outputs keep their file order; signal names are the `.bench` names
/// verbatim.
///
/// # Errors
///
/// Returns a [`ParseError`] on non-UTF-8 bytes, grammar violations,
/// unsupported operators, duplicate or undefined signals, wrong arities, or
/// a combinational cycle. The returned netlist has passed
/// [`Netlist::validate`].
pub fn parse_bench(bytes: &[u8], name: impl Into<String>) -> Result<Netlist, ParseError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ParseError::NotUtf8 {
        offset: e.valid_up_to(),
    })?;

    enum RawDef<'a> {
        Latch {
            line: usize,
            data: &'a str,
        },
        Gate {
            line: usize,
            op: GateOp,
            args: Vec<&'a str>,
        },
    }

    // Pass 1: collect definitions and build the name -> node map.
    let mut node_of: HashMap<&str, NodeRef> = HashMap::new();
    let mut inputs: Vec<&str> = Vec::new();
    let mut latch_defs: Vec<(&str, RawDef)> = Vec::new();
    let mut gate_defs: Vec<(&str, RawDef)> = Vec::new();
    let mut output_refs: Vec<(usize, &str)> = Vec::new();
    for (line, raw) in text.lines().enumerate() {
        let line = line + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some((lhs, rhs)) = stmt.split_once('=') {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            if lhs.is_empty() {
                return Err(ParseError::BadSyntax {
                    line,
                    reason: format!("missing assignment target in `{stmt}`"),
                });
            }
            let (keyword, args) = call_form(rhs, line)?;
            let def = if keyword.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    return Err(ParseError::BadArity {
                        signal: lhs.to_string(),
                        op: "DFF".to_string(),
                        got: args.len(),
                    });
                }
                let node = NodeRef::Latch(latch_defs.len());
                if node_of.insert(lhs, node).is_some() {
                    return Err(ParseError::DuplicateDefinition {
                        line,
                        signal: lhs.to_string(),
                    });
                }
                latch_defs.push((
                    lhs,
                    RawDef::Latch {
                        line,
                        data: args[0],
                    },
                ));
                continue;
            } else if let Some(op) = gate_op(keyword) {
                RawDef::Gate { line, op, args }
            } else {
                return Err(ParseError::UnsupportedGate {
                    line,
                    op: keyword.to_string(),
                });
            };
            let node = NodeRef::Gate(gate_defs.len());
            if node_of.insert(lhs, node).is_some() {
                return Err(ParseError::DuplicateDefinition {
                    line,
                    signal: lhs.to_string(),
                });
            }
            gate_defs.push((lhs, def));
        } else {
            let (keyword, args) = call_form(stmt, line)?;
            let arg = match args.as_slice() {
                [one] => *one,
                _ => {
                    return Err(ParseError::BadSyntax {
                        line,
                        reason: format!("`{keyword}` takes exactly one signal, got {}", args.len()),
                    })
                }
            };
            if keyword.eq_ignore_ascii_case("INPUT") {
                if node_of.insert(arg, NodeRef::Input(inputs.len())).is_some() {
                    return Err(ParseError::DuplicateDefinition {
                        line,
                        signal: arg.to_string(),
                    });
                }
                inputs.push(arg);
            } else if keyword.eq_ignore_ascii_case("OUTPUT") {
                output_refs.push((line, arg));
            } else {
                return Err(ParseError::BadSyntax {
                    line,
                    reason: format!("expected `INPUT`, `OUTPUT` or an assignment, got `{keyword}`"),
                });
            }
        }
    }

    // Pass 2: resolve names.
    let resolve = |signal: &str, line: usize| -> Result<Lit, ParseError> {
        node_of
            .get(signal)
            .map(|node| Lit::of(*node))
            .ok_or_else(|| ParseError::UndefinedSignal {
                line,
                signal: signal.to_string(),
            })
    };

    let netlist = Netlist {
        name: name.into(),
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        latches: latch_defs
            .into_iter()
            .map(|(name, def)| {
                let RawDef::Latch { line, data } = def else {
                    unreachable!("latch_defs holds only latches")
                };
                Ok(Latch {
                    name: name.to_string(),
                    init: false, // `.bench` has no reset-value syntax; DFFs reset to 0.
                    next: resolve(data, line)?,
                })
            })
            .collect::<Result<_, ParseError>>()?,
        gates: gate_defs
            .into_iter()
            .map(|(name, def)| {
                let RawDef::Gate { line, op, args } = def else {
                    unreachable!("gate_defs holds only gates")
                };
                Ok(Gate {
                    name: name.to_string(),
                    op,
                    fanins: args
                        .iter()
                        .map(|a| resolve(a, line))
                        .collect::<Result<_, ParseError>>()?,
                })
            })
            .collect::<Result<_, ParseError>>()?,
        outputs: output_refs
            .into_iter()
            .map(|(line, signal)| {
                Ok(Output {
                    name: signal.to_string(),
                    driver: resolve(signal, line)?,
                })
            })
            .collect::<Result<_, ParseError>>()?,
    };
    netlist.validate()?;
    Ok(netlist)
}

/// Renders a netlist as an ISCAS `.bench` document: `INPUT` lines, `OUTPUT`
/// lines, `DFF` definitions, then gates, all in IR order.
///
/// Inverse of [`parse_bench`] for bench-representable netlists:
/// `parse_bench(emit_bench(n)?)` equals `n` whenever `n` stays inside the
/// format — no negated edges or constants (negation is a `NOT` gate in
/// `.bench`), latches reset to 0, and each output named after its (plain)
/// driving signal.
///
/// # Errors
///
/// [`EmitError::NotBenchRepresentable`] when the netlist leaves that
/// fragment, naming the offending edge.
pub fn emit_bench(netlist: &Netlist) -> Result<String, EmitError> {
    use std::fmt::Write as _;
    let plain_name = |lit: Lit, context: &dyn Fn() -> String| -> Result<&str, EmitError> {
        if lit.negated || lit.node == NodeRef::Const {
            return Err(EmitError::NotBenchRepresentable { context: context() });
        }
        Ok(netlist.node_name(lit.node))
    };
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name);
    for input in &netlist.inputs {
        let _ = writeln!(out, "INPUT({input})");
    }
    for output in &netlist.outputs {
        let driver = plain_name(output.driver, &|| format!("output `{}`", output.name))?;
        if driver != output.name {
            return Err(EmitError::NotBenchRepresentable {
                context: format!("output `{}` (renames signal `{driver}`)", output.name),
            });
        }
        let _ = writeln!(out, "OUTPUT({})", output.name);
    }
    for latch in &netlist.latches {
        if latch.init {
            return Err(EmitError::NotBenchRepresentable {
                context: format!("latch `{}` (resets to 1)", latch.name),
            });
        }
        let next = plain_name(latch.next, &|| format!("latch `{}`", latch.name))?;
        let _ = writeln!(out, "{} = DFF({next})", latch.name);
    }
    for gate in &netlist.gates {
        let fanins = gate
            .fanins
            .iter()
            .map(|f| plain_name(*f, &|| format!("gate `{}`", gate.name)))
            .collect::<Result<Vec<_>, EmitError>>()?;
        let _ = writeln!(
            out,
            "{} = {}({})",
            gate.name,
            gate.op.bench_name(),
            fanins.join(", ")
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "\
# toggle
INPUT(en)
OUTPUT(q)
nq = NOT(q)
d = XOR(en, q)   # q toggles whenever en is high
q = DFF(d)
";

    #[test]
    fn parses_forward_references_and_comments() {
        let n = parse_bench(TOGGLE.as_bytes(), "toggle").unwrap();
        assert_eq!(n.inputs, vec!["en".to_string()]);
        assert_eq!(n.latches.len(), 1);
        assert_eq!(n.latches[0].name, "q");
        assert_eq!(n.latches[0].next, Lit::of(NodeRef::Gate(1)));
        assert_eq!(n.gates[0].op, GateOp::Not);
        assert_eq!(n.gates[1].op, GateOp::Xor);
        assert_eq!(n.outputs[0].name, "q");
        assert_eq!(n.outputs[0].driver, Lit::of(NodeRef::Latch(0)));
    }

    #[test]
    fn rejects_undefined_signals() {
        let err = parse_bench(b"g = AND(a, b)\n", "t").unwrap_err();
        assert!(matches!(err, ParseError::UndefinedSignal { line: 1, .. }));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        let err = parse_bench(b"INPUT(a)\na = NOT(a)\n", "t").unwrap_err();
        assert!(matches!(
            err,
            ParseError::DuplicateDefinition { line: 2, .. }
        ));
    }

    #[test]
    fn rejects_combinational_cycles() {
        let err =
            parse_bench(b"INPUT(a)\nx = AND(a, y)\ny = BUFF(x)\nOUTPUT(y)\n", "t").unwrap_err();
        assert!(matches!(err, ParseError::CombinationalCycle { .. }));
    }

    #[test]
    fn rejects_unknown_operators() {
        let err = parse_bench(b"INPUT(a)\ng = MAJ(a, a, a)\n", "t").unwrap_err();
        assert!(matches!(err, ParseError::UnsupportedGate { line: 2, .. }));
    }

    #[test]
    fn dff_arity_is_checked() {
        let err = parse_bench(b"INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n", "t").unwrap_err();
        assert!(matches!(err, ParseError::BadArity { got: 2, .. }));
    }

    #[test]
    fn round_trips_through_emit() {
        let n = parse_bench(TOGGLE.as_bytes(), "toggle").unwrap();
        let emitted = emit_bench(&n).unwrap();
        let back = parse_bench(emitted.as_bytes(), "toggle").unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn emit_rejects_negated_edges() {
        let mut n = parse_bench(TOGGLE.as_bytes(), "toggle").unwrap();
        n.latches[0].next = n.latches[0].next.inverted();
        assert!(matches!(
            emit_bench(&n),
            Err(EmitError::NotBenchRepresentable { .. })
        ));
    }
}
