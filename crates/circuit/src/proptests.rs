//! Property tests over the seeded random netlist generator.
//!
//! Three families of invariants:
//!
//! * **Round trips**: `parse ∘ emit` is the identity on the IR for both the
//!   AIGER and the `.bench` printer (each over its representable flavor).
//! * **Cone-of-influence**: the reduction is idempotent, never drops a
//!   primary input, and the reduced system is observationally equivalent to
//!   the full one under lock-step simulation.
//! * **Learning**: the COI-reduced system produces a byte-identical learned
//!   [`amle_core::RunReport::semantic_fingerprint`], which is the invariant
//!   the benchmark harness relies on when it learns from reduced circuits.

use crate::*;
use amle_core::{ActiveLearner, ActiveLearnerConfig, ParallelConfig};
use amle_expr::Value;
use amle_learner::HistoryLearner;
use proptest::prelude::*;

fn flavor_strategy() -> impl Strategy<Value = GenFlavor> {
    prop_oneof![Just(GenFlavor::Aig), Just(GenFlavor::Bench)]
}

/// Drives `compiled` from its initial valuation with a deterministic input
/// pattern derived from `seed` and returns, per step, the values of the
/// observable output variables (in `output_vars` order).
fn output_log(compiled: &CompiledCircuit, seed: u64, steps: usize) -> Vec<Vec<Value>> {
    let mut rng = SplitMix64::new(seed ^ 0x005E_ED0F_1A7C_BEEF);
    let inputs = compiled.system.input_vars().to_vec();
    let mut current = compiled.system.initial_valuation();
    let mut log = Vec::with_capacity(steps);
    let snapshot = |valuation: &amle_expr::Valuation| -> Vec<Value> {
        compiled
            .output_vars
            .iter()
            .map(|(_, id)| valuation.value(*id))
            .collect()
    };
    log.push(snapshot(&current));
    for _ in 0..steps {
        let assignment: Vec<_> = inputs
            .iter()
            .map(|id| (*id, Value::Bool(rng.flag())))
            .collect();
        current = compiled.system.step(&current, &assignment);
        log.push(snapshot(&current));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aag_parse_emit_is_identity_on_the_ir(seed in 0u64..100_000) {
        let netlist = random_netlist(seed, GenFlavor::Aig);
        let text = emit_aag(&netlist).expect("Aig-flavored netlists are AIGER-representable");
        let reparsed = parse_aag(text.as_bytes(), &netlist.name)
            .expect("emitted AIGER must parse");
        prop_assert_eq!(&reparsed, &netlist);
        // The printer is a fixed point: emitting the reparse reproduces the text.
        prop_assert_eq!(emit_aag(&reparsed).unwrap(), text);
    }

    #[test]
    fn bench_parse_emit_is_identity_on_the_ir(seed in 0u64..100_000) {
        let netlist = random_netlist(seed, GenFlavor::Bench);
        let text = emit_bench(&netlist).expect("Bench-flavored netlists are .bench-representable");
        let reparsed = parse_bench(text.as_bytes(), &netlist.name)
            .expect("emitted .bench must parse");
        prop_assert_eq!(&reparsed, &netlist);
        prop_assert_eq!(emit_bench(&reparsed).unwrap(), text);
    }

    #[test]
    fn coi_reduction_is_idempotent_and_keeps_inputs(
        seed in 0u64..100_000,
        flavor in flavor_strategy(),
    ) {
        let netlist = random_netlist(seed, flavor);
        let (reduced, stats) = reduce_to_coi(&netlist);
        prop_assert_eq!(&reduced.inputs, &netlist.inputs);
        prop_assert_eq!(reduced.latches.len(), stats.latches_in_coi);
        prop_assert_eq!(reduced.gates.len(), stats.gates_in_coi);
        let (again, again_stats) = reduce_to_coi(&reduced);
        prop_assert_eq!(&again, &reduced);
        prop_assert_eq!(again_stats.gates_dropped(), 0);
        prop_assert_eq!(again_stats.latches_dropped(), 0);
    }

    #[test]
    fn coi_reduction_is_observationally_equivalent(
        seed in 0u64..100_000,
        flavor in flavor_strategy(),
    ) {
        let netlist = random_netlist(seed, flavor);
        let full = compile(&netlist).expect("generated netlists compile");
        let (reduced_netlist, _) = reduce_to_coi(&netlist);
        let reduced = compile(&reduced_netlist).expect("reduced netlists compile");
        let names = |c: &CompiledCircuit| -> Vec<String> {
            c.output_vars.iter().map(|(n, _)| n.clone()).collect()
        };
        prop_assert_eq!(names(&full), names(&reduced));
        prop_assert_eq!(output_log(&full, seed, 24), output_log(&reduced, seed, 24));
    }
}

proptest! {
    // Each case runs two full (if tiny) active-learning loops, so keep the
    // case count low; the lock-step simulation property above carries the
    // broad-coverage load.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn coi_reduction_preserves_the_learned_fingerprint(
        seed in 0u64..1_000,
        flavor in flavor_strategy(),
    ) {
        let netlist = random_netlist(seed, flavor);
        let (reduced_netlist, _) = reduce_to_coi(&netlist);
        let learn = |n: &Netlist| -> String {
            let compiled = compile(n).expect("generated netlists compile");
            let config = ActiveLearnerConfig {
                observables: Some(compiled.observables()),
                initial_traces: 5,
                trace_length: 6,
                k: 3,
                max_iterations: 2,
                parallel: ParallelConfig::with_workers(1),
                ..Default::default()
            };
            let report = ActiveLearner::new(&compiled.system, HistoryLearner::default(), config)
                .run()
                .expect("active learning run failed");
            let vars = compiled.system.vars();
            // The initial condition's rendered assumption is the system's
            // `Init(X)` formula, which enumerates *all* state variables —
            // including latches outside the cone of influence. That is the
            // one part of the fingerprint that legitimately differs between
            // the full and the reduced system, so normalise exactly it: the
            // abstraction, the invariants' conclusions and the verdict
            // trajectory must still be byte-identical.
            let init = amle_automaton::display_expr(&compiled.system.init_expr(), vars);
            report.semantic_fingerprint(vars).replace(
                &format!("invariant: {init} && R(X, X')"),
                "invariant: Init(X) && R(X, X')",
            )
        };
        prop_assert_eq!(learn(&netlist), learn(&reduced_netlist));
    }
}
