//! ASCII AIGER (`.aag`) reader and writer.
//!
//! The format (Biere, *The AIGER And-Inverter Graph Format*): a header
//! `aag M I L O A`, then `I` input lines, `L` latch lines (`current next
//! [init]`), `O` output lines, `A` and-gate lines (`lhs rhs0 rhs1`), an
//! optional symbol table (`i0 name`, `l2 name`, `o1 name`) and an optional
//! comment section starting at a single `c` line. Literals encode variable
//! `v` as `2v` and its negation as `2v + 1`; literals `0`/`1` are the
//! constants.
//!
//! The reader accepts any definition order (a latch's next-state literal may
//! reference an and-gate defined later), supports the AIGER 1.9 explicit
//! latch reset values `0`/`1`, and returns a typed [`ParseError`] — never a
//! panic — on malformed input, including non-UTF-8 bytes. The binary `aig`
//! format is out of scope (its header is recognised and rejected with a
//! pointed message).

use crate::netlist::{Gate, GateOp, Latch, Lit, Netlist, NodeRef, Output, ParseError};
use std::collections::HashMap;

/// Splits a line into whitespace-separated tokens.
fn tokens(line: &str) -> Vec<&str> {
    line.split_whitespace().collect()
}

/// Parses one unsigned literal token.
fn literal(token: &str, line: usize, max: u64) -> Result<u64, ParseError> {
    let value: u64 = token.parse().map_err(|_| ParseError::BadToken {
        line,
        token: token.to_string(),
    })?;
    if value > max {
        return Err(ParseError::OutOfRangeLiteral {
            line,
            literal: value,
            max,
        });
    }
    Ok(value)
}

/// Parses an ASCII AIGER document into the shared [`Netlist`] IR.
///
/// `name` becomes [`Netlist::name`] (the format itself stores no circuit
/// name). Signal names come from the symbol table; unnamed positions get
/// deterministic defaults (`i0`, `l1`, `o0`, …) and and-gates — anonymous in
/// AIGER — are always named `a{index}`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found: truncation,
/// a malformed header (including the binary `aig` format), out-of-range or
/// odd definition literals, duplicate or undefined variables, unsupported
/// latch resets, or a malformed symbol entry. The returned netlist has
/// passed [`Netlist::validate`].
pub fn parse_aag(bytes: &[u8], name: impl Into<String>) -> Result<Netlist, ParseError> {
    let text = std::str::from_utf8(bytes).map_err(|e| ParseError::NotUtf8 {
        offset: e.valid_up_to(),
    })?;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));

    let (header_line, header) = lines.next().ok_or_else(|| ParseError::Truncated {
        expected: "the `aag M I L O A` header".to_string(),
    })?;
    let head = tokens(header);
    if head.first() == Some(&"aig") {
        return Err(ParseError::BadHeader {
            line: header_line,
            reason: "binary AIGER (`aig`) is not supported; convert to ASCII (`aag`)".to_string(),
        });
    }
    if head.first() != Some(&"aag") {
        return Err(ParseError::BadHeader {
            line: header_line,
            reason: format!("expected `aag M I L O A`, got `{header}`"),
        });
    }
    if head.len() != 6 {
        return Err(ParseError::BadHeader {
            line: header_line,
            reason: format!(
                "expected exactly 5 counts (M I L O A), got {} (the 1.9 B/C/J/F sections are not supported)",
                head.len() - 1
            ),
        });
    }
    let mut counts = [0u64; 5];
    for (slot, token) in counts.iter_mut().zip(&head[1..]) {
        *slot = token.parse().map_err(|_| ParseError::BadToken {
            line: header_line,
            token: token.to_string(),
        })?;
    }
    let [max_var, num_inputs, num_latches, num_outputs, num_ands] = counts;
    if num_inputs + num_latches + num_ands > max_var {
        return Err(ParseError::BadHeader {
            line: header_line,
            reason: format!(
                "M = {max_var} is smaller than I + L + A = {}",
                num_inputs + num_latches + num_ands
            ),
        });
    }
    let max_literal = 2 * max_var + 1;

    // Pass 1: read the definitions, building the variable -> node map.
    let mut var_to_node: HashMap<u64, NodeRef> = HashMap::new();
    let mut define = |literal: u64, node: NodeRef, line: usize| -> Result<u64, ParseError> {
        if literal < 2 || !literal.is_multiple_of(2) {
            return Err(ParseError::ExpectedDefinableLiteral { line, literal });
        }
        let variable = literal / 2;
        if var_to_node.insert(variable, node).is_some() {
            return Err(ParseError::DuplicateDefinition {
                line,
                signal: format!("variable {variable}"),
            });
        }
        Ok(variable)
    };

    let mut next_line = |expected: &str| -> Result<(usize, &str), ParseError> {
        lines.next().ok_or_else(|| ParseError::Truncated {
            expected: expected.to_string(),
        })
    };

    for index in 0..num_inputs {
        let (line, text) = next_line(&format!("input line {index}"))?;
        let toks = tokens(text);
        if toks.len() != 1 {
            return Err(ParseError::BadSyntax {
                line,
                reason: format!("an input line is a single literal, got `{text}`"),
            });
        }
        let lit = literal(toks[0], line, max_literal)?;
        define(lit, NodeRef::Input(index as usize), line)?;
    }

    // Latch and output literals may reference later definitions; resolve
    // after pass 1.
    let mut raw_latches: Vec<(usize, u64, bool)> = Vec::new(); // (line, next literal, init)
    for index in 0..num_latches {
        let (line, text) = next_line(&format!("latch line {index}"))?;
        let toks = tokens(text);
        if toks.len() != 2 && toks.len() != 3 {
            return Err(ParseError::BadSyntax {
                line,
                reason: format!("a latch line is `current next [init]`, got `{text}`"),
            });
        }
        let current = literal(toks[0], line, max_literal)?;
        let next = literal(toks[1], line, max_literal)?;
        let init = match toks.get(2) {
            None | Some(&"0") => false,
            Some(&"1") => true,
            Some(other) => {
                return Err(ParseError::BadLatchInit {
                    line,
                    token: other.to_string(),
                })
            }
        };
        define(current, NodeRef::Latch(index as usize), line)?;
        raw_latches.push((line, next, init));
    }

    let mut raw_outputs: Vec<(usize, u64)> = Vec::new();
    for index in 0..num_outputs {
        let (line, text) = next_line(&format!("output line {index}"))?;
        let toks = tokens(text);
        if toks.len() != 1 {
            return Err(ParseError::BadSyntax {
                line,
                reason: format!("an output line is a single literal, got `{text}`"),
            });
        }
        raw_outputs.push((line, literal(toks[0], line, max_literal)?));
    }

    let mut raw_gates: Vec<(usize, u64, u64)> = Vec::new(); // (line, rhs0, rhs1)
    for index in 0..num_ands {
        let (line, text) = next_line(&format!("and-gate line {index}"))?;
        let toks = tokens(text);
        if toks.len() != 3 {
            return Err(ParseError::BadSyntax {
                line,
                reason: format!("an and-gate line is `lhs rhs0 rhs1`, got `{text}`"),
            });
        }
        let lhs = literal(toks[0], line, max_literal)?;
        let rhs0 = literal(toks[1], line, max_literal)?;
        let rhs1 = literal(toks[2], line, max_literal)?;
        define(lhs, NodeRef::Gate(index as usize), line)?;
        raw_gates.push((line, rhs0, rhs1));
    }

    // Symbol table and comment section.
    let mut input_names: Vec<String> = (0..num_inputs).map(|i| format!("i{i}")).collect();
    let mut latch_names: Vec<String> = (0..num_latches).map(|i| format!("l{i}")).collect();
    let mut output_names: Vec<String> = (0..num_outputs).map(|i| format!("o{i}")).collect();
    for (line, text) in lines {
        if text.trim() == "c" {
            break; // Comment section: everything after is free-form.
        }
        if text.trim().is_empty() {
            continue;
        }
        let Some((position_token, symbol)) = text.split_once(char::is_whitespace) else {
            return Err(ParseError::BadSymbol {
                line,
                reason: format!("expected `i|l|o<position> <name>`, got `{text}`"),
            });
        };
        let symbol = symbol.trim();
        let (kind, digits) = position_token.split_at(1);
        let position: usize = digits.parse().map_err(|_| ParseError::BadSymbol {
            line,
            reason: format!("`{position_token}` has no numeric position"),
        })?;
        let slot = match kind {
            "i" => input_names.get_mut(position),
            "l" => latch_names.get_mut(position),
            "o" => output_names.get_mut(position),
            other => {
                return Err(ParseError::BadSymbol {
                    line,
                    reason: format!("unknown symbol kind `{other}`"),
                })
            }
        };
        match slot {
            Some(slot) if !symbol.is_empty() => *slot = symbol.to_string(),
            Some(_) => {
                return Err(ParseError::BadSymbol {
                    line,
                    reason: "empty symbol name".to_string(),
                })
            }
            None => {
                return Err(ParseError::BadSymbol {
                    line,
                    reason: format!("position {position_token} does not exist"),
                })
            }
        }
    }

    // Pass 2: resolve literals through the variable map.
    let resolve =
        |raw: u64, line: usize| -> Result<Lit, ParseError> {
            if raw <= 1 {
                return Ok(if raw == 0 { Lit::FALSE } else { Lit::TRUE });
            }
            let node = var_to_node.get(&(raw / 2)).copied().ok_or_else(|| {
                ParseError::UndefinedSignal {
                    line,
                    signal: format!("literal {raw}"),
                }
            })?;
            Ok(Lit {
                node,
                negated: raw % 2 == 1,
            })
        };

    let netlist = Netlist {
        name: name.into(),
        inputs: input_names,
        latches: raw_latches
            .into_iter()
            .zip(latch_names)
            .map(|((line, next, init), name)| {
                Ok(Latch {
                    name,
                    init,
                    next: resolve(next, line)?,
                })
            })
            .collect::<Result<_, ParseError>>()?,
        gates: raw_gates
            .into_iter()
            .enumerate()
            .map(|(index, (line, rhs0, rhs1))| {
                Ok(Gate {
                    name: format!("a{index}"),
                    op: GateOp::And,
                    fanins: vec![resolve(rhs0, line)?, resolve(rhs1, line)?],
                })
            })
            .collect::<Result<_, ParseError>>()?,
        outputs: raw_outputs
            .into_iter()
            .zip(output_names)
            .map(|((line, raw), name)| {
                Ok(Output {
                    name,
                    driver: resolve(raw, line)?,
                })
            })
            .collect::<Result<_, ParseError>>()?,
    };
    netlist.validate()?;
    Ok(netlist)
}

/// Errors raised when a netlist cannot be expressed in a target format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// AIGER can only express two-input AND gates (negation lives on the
    /// edges); this netlist has a named-operator gate.
    NotAnAig {
        /// The offending gate.
        gate: String,
    },
    /// `.bench` has no negated edges or constants; this signal uses one.
    NotBenchRepresentable {
        /// Where the inexpressible edge sits.
        context: String,
    },
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::NotAnAig { gate } => write!(
                f,
                "gate `{gate}` is not a two-input AND; lower the netlist before emitting AIGER"
            ),
            EmitError::NotBenchRepresentable { context } => write!(
                f,
                "{context} uses a negated edge or a constant, which `.bench` cannot express"
            ),
        }
    }
}

impl std::error::Error for EmitError {}

/// Renders a netlist as an ASCII AIGER document with the canonical variable
/// layout (inputs, then latches, then and-gates) and a full symbol table.
///
/// Inverse of [`parse_aag`] up to gate names: `parse_aag(emit_aag(n)?)`
/// equals `n` whenever `n`'s gates carry the synthesized `a{index}` names
/// (AIGER has no place to store gate names).
///
/// # Errors
///
/// [`EmitError::NotAnAig`] if any gate is not a two-input [`GateOp::And`];
/// named-operator netlists must be lowered first.
pub fn emit_aag(netlist: &Netlist) -> Result<String, EmitError> {
    use std::fmt::Write as _;
    let num_inputs = netlist.inputs.len();
    let num_latches = netlist.latches.len();
    for gate in &netlist.gates {
        if gate.op != GateOp::And || gate.fanins.len() != 2 {
            return Err(EmitError::NotAnAig {
                gate: gate.name.clone(),
            });
        }
    }
    let lit_of = |lit: Lit| -> u64 {
        let base = match lit.node {
            NodeRef::Const => 0,
            NodeRef::Input(i) => 2 * (1 + i as u64),
            NodeRef::Latch(i) => 2 * (1 + num_inputs as u64 + i as u64),
            NodeRef::Gate(i) => 2 * (1 + num_inputs as u64 + num_latches as u64 + i as u64),
        };
        base + u64::from(lit.negated)
    };
    let max_var = (num_inputs + num_latches + netlist.gates.len()) as u64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {max_var} {num_inputs} {num_latches} {} {}",
        netlist.outputs.len(),
        netlist.gates.len()
    );
    for index in 0..num_inputs {
        let _ = writeln!(out, "{}", 2 * (1 + index as u64));
    }
    for (index, latch) in netlist.latches.iter().enumerate() {
        let current = 2 * (1 + num_inputs as u64 + index as u64);
        let _ = write!(out, "{current} {}", lit_of(latch.next));
        if latch.init {
            let _ = write!(out, " 1");
        }
        out.push('\n');
    }
    for output in &netlist.outputs {
        let _ = writeln!(out, "{}", lit_of(output.driver));
    }
    for (index, gate) in netlist.gates.iter().enumerate() {
        let lhs = 2 * (1 + num_inputs as u64 + num_latches as u64 + index as u64);
        let _ = writeln!(
            out,
            "{lhs} {} {}",
            lit_of(gate.fanins[0]),
            lit_of(gate.fanins[1])
        );
    }
    for (index, name) in netlist.inputs.iter().enumerate() {
        let _ = writeln!(out, "i{index} {name}");
    }
    for (index, latch) in netlist.latches.iter().enumerate() {
        let _ = writeln!(out, "l{index} {}", latch.name);
    }
    for (index, output) in netlist.outputs.iter().enumerate() {
        let _ = writeln!(out, "o{index} {}", output.name);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = "aag 2 1 1 1 0\n2\n4 5\n4\ni0 en\nl0 q\no0 out\n";

    #[test]
    fn parses_a_toggle_latch() {
        let n = parse_aag(TOGGLE.as_bytes(), "toggle").unwrap();
        assert_eq!(n.name, "toggle");
        assert_eq!(n.inputs, vec!["en".to_string()]);
        assert_eq!(n.latches.len(), 1);
        assert_eq!(n.latches[0].name, "q");
        assert!(!n.latches[0].init);
        // next = !q
        assert_eq!(n.latches[0].next, Lit::of(NodeRef::Latch(0)).inverted());
        assert_eq!(n.outputs[0].driver, Lit::of(NodeRef::Latch(0)));
    }

    #[test]
    fn default_names_fill_missing_symbols() {
        let n = parse_aag(b"aag 1 1 0 1 0\n2\n3\n", "t").unwrap();
        assert_eq!(n.inputs, vec!["i0".to_string()]);
        assert_eq!(n.outputs[0].name, "o0");
        assert_eq!(n.outputs[0].driver, Lit::of(NodeRef::Input(0)).inverted());
    }

    #[test]
    fn constants_and_comments_parse() {
        let n = parse_aag(b"aag 0 0 0 2 0\n0\n1\nc\nanything goes here\n", "c").unwrap();
        assert_eq!(n.outputs[0].driver, Lit::FALSE);
        assert_eq!(n.outputs[1].driver, Lit::TRUE);
    }

    #[test]
    fn latch_init_one_is_supported() {
        let n = parse_aag(b"aag 1 0 1 1 0\n2 2 1\n2\n", "t").unwrap();
        assert!(n.latches[0].init);
    }

    #[test]
    fn round_trips_through_emit() {
        let n = parse_aag(TOGGLE.as_bytes(), "toggle").unwrap();
        let emitted = emit_aag(&n).unwrap();
        let back = parse_aag(emitted.as_bytes(), "toggle").unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn emit_rejects_named_operator_gates() {
        let mut n = parse_aag(TOGGLE.as_bytes(), "toggle").unwrap();
        n.gates.push(crate::netlist::Gate {
            name: "x".to_string(),
            op: GateOp::Xor,
            fanins: vec![Lit::of(NodeRef::Input(0)), Lit::of(NodeRef::Latch(0))],
        });
        assert!(matches!(emit_aag(&n), Err(EmitError::NotAnAig { .. })));
    }
}
