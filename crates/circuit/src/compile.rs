//! Compiling a [`Netlist`] into an [`amle_system::System`].
//!
//! The mapping is the one the ROADMAP names: latches become boolean state
//! variables (reset value → initial value), primary inputs become boolean
//! input variables, and each latch's next-state cone becomes its update
//! expression, built bottom-up in topological order and passed through
//! [`Expr::canonical`] so structurally shared cones intern to a single
//! arena node.
//!
//! Outputs need one extra step: the learner observes *variables*, but a
//! `.bench`/AIGER output may be driven by an arbitrary combinational signal.
//! An output driven directly by a plain (non-negated) input or latch simply
//! observes that variable. Any other driver — a gate, a negated edge, a
//! constant — is *registered*: the compiler adds a fresh boolean state
//! variable named after the output whose update is the driver expression,
//! i.e. the observed value is the driver delayed by one clock, with the
//! reset value obtained by evaluating the driver at the latch reset values
//! and all inputs low.

use crate::coi::{coi_stats, NetlistStats};
use crate::netlist::{GateOp, Lit, Netlist, NodeRef, ParseError};
use amle_expr::{Expr, Sort, Value, VarId};
use amle_system::{BuildSystemError, System, SystemBuilder};

/// Errors raised while compiling a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The netlist failed [`Netlist::validate`].
    Invalid(ParseError),
    /// The system builder rejected the compiled system.
    Build(BuildSystemError),
    /// The netlist has no latches and no registered outputs, so the compiled
    /// system would have no state variables at all.
    NoState,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "invalid netlist: {e}"),
            CompileError::Build(e) => write!(f, "system construction failed: {e}"),
            CompileError::NoState => {
                write!(
                    f,
                    "netlist has no latches or registered outputs (stateless)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Invalid(e) => Some(e),
            CompileError::Build(e) => Some(e),
            CompileError::NoState => None,
        }
    }
}

impl From<BuildSystemError> for CompileError {
    fn from(e: BuildSystemError) -> Self {
        CompileError::Build(e)
    }
}

/// A netlist compiled into a transition system.
#[derive(Debug)]
pub struct CompiledCircuit {
    /// The transition system.
    pub system: System,
    /// One variable per primary input, in netlist order.
    pub input_vars: Vec<VarId>,
    /// One state variable per latch, in netlist order.
    pub latch_vars: Vec<VarId>,
    /// One `(output name, observed variable)` per netlist output, in order.
    /// The variable is an input/latch variable (direct observation) or a
    /// registered-output state variable.
    pub output_vars: Vec<(String, VarId)>,
    /// COI statistics of the compiled netlist (computed before compilation;
    /// compile after [`crate::reduce_to_coi`] to see reduced counts).
    pub stats: NetlistStats,
}

impl CompiledCircuit {
    /// The observable variables for the learner: each output's variable,
    /// deduplicated, preserving first-appearance order.
    pub fn observables(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for (_, var) in &self.output_vars {
            if !seen.contains(var) {
                seen.push(*var);
            }
        }
        seen
    }
}

/// Compiles a validated netlist into a [`System`].
///
/// # Errors
///
/// [`CompileError::Invalid`] if the netlist fails validation (so arbitrary
/// generated or hand-built IR is safe to feed in), [`CompileError::NoState`]
/// for purely combinational netlists whose outputs are all direct input
/// observations, and [`CompileError::Build`] if the system builder objects
/// (e.g. an AIGER output symbol colliding with a signal name — the compiler
/// disambiguates registered-output names with an `_out` suffix first).
pub fn compile(netlist: &Netlist) -> Result<CompiledCircuit, CompileError> {
    netlist.validate().map_err(CompileError::Invalid)?;
    let stats = coi_stats(netlist);
    let mut builder = SystemBuilder::new();
    builder.name(netlist.name.clone());

    let input_vars: Vec<VarId> = netlist
        .inputs
        .iter()
        .map(|name| builder.input(name.clone(), Sort::Bool))
        .collect::<Result<_, _>>()?;
    let latch_vars: Vec<VarId> = netlist
        .latches
        .iter()
        .map(|latch| builder.state(latch.name.clone(), Sort::Bool, Value::Bool(latch.init)))
        .collect::<Result<_, _>>()?;

    // Gate expressions, bottom-up in topological order.
    let mut gate_exprs: Vec<Option<Expr>> = vec![None; netlist.gates.len()];
    let expr_of = |lit: Lit, gate_exprs: &[Option<Expr>], builder: &SystemBuilder| -> Expr {
        let plain = match lit.node {
            NodeRef::Const => Expr::false_(),
            NodeRef::Input(i) => builder.var(input_vars[i]),
            NodeRef::Latch(i) => builder.var(latch_vars[i]),
            NodeRef::Gate(i) => gate_exprs[i]
                .clone()
                .expect("topological order visits fanins first"),
        };
        if lit.negated {
            plain.not()
        } else {
            plain
        }
    };
    let order = netlist.gate_topo_order().map_err(CompileError::Invalid)?;
    for index in order {
        let gate = &netlist.gates[index];
        let fanins: Vec<Expr> = gate
            .fanins
            .iter()
            .map(|f| expr_of(*f, &gate_exprs, &builder))
            .collect();
        let expr = match gate.op {
            GateOp::And => Expr::and_all(fanins),
            GateOp::Or => Expr::or_all(fanins),
            GateOp::Nand => Expr::and_all(fanins).not(),
            GateOp::Nor => Expr::or_all(fanins).not(),
            GateOp::Xor => fanins[0].xor(&fanins[1]),
            GateOp::Xnor => fanins[0].xor(&fanins[1]).not(),
            GateOp::Not => fanins[0].not(),
            GateOp::Buf => fanins[0].clone(),
        };
        gate_exprs[index] = Some(expr.canonical());
    }

    for (index, latch) in netlist.latches.iter().enumerate() {
        let update = expr_of(latch.next, &gate_exprs, &builder).canonical();
        builder.update(latch_vars[index], update)?;
    }

    // Outputs: observe plain input/latch drivers directly; register the rest.
    let mut output_vars: Vec<(String, VarId)> = Vec::new();
    let mut registered: Vec<(VarId, Expr)> = Vec::new();
    let latch_inits: Vec<bool> = netlist.latches.iter().map(|l| l.init).collect();
    for output in &netlist.outputs {
        let direct = match (output.driver.node, output.driver.negated) {
            (NodeRef::Input(i), false) => Some(input_vars[i]),
            (NodeRef::Latch(i), false) => Some(latch_vars[i]),
            _ => None,
        };
        let var = match direct {
            Some(var) => var,
            None => {
                let init = netlist.eval_lit(output.driver, &latch_inits);
                let update = expr_of(output.driver, &gate_exprs, &builder).canonical();
                let var = [output.name.clone(), format!("{}_out", output.name)]
                    .into_iter()
                    .find_map(|name| builder.state(name, Sort::Bool, Value::Bool(init)).ok())
                    .ok_or(CompileError::Build(BuildSystemError::DuplicateVariable {
                        name: output.name.clone(),
                    }))?;
                registered.push((var, update));
                var
            }
        };
        output_vars.push((output.name.clone(), var));
    }
    for (var, update) in registered {
        builder.update(var, update)?;
    }

    let system = builder.build().map_err(|e| match e {
        BuildSystemError::NoStateVariables => CompileError::NoState,
        other => CompileError::Build(other),
    })?;
    Ok(CompiledCircuit {
        system,
        input_vars,
        latch_vars,
        output_vars,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fmt::parse_bench;
    use amle_expr::Value;

    const TOGGLE: &str = "\
INPUT(en)
OUTPUT(q)
d = XOR(en, q)
q = DFF(d)
";

    #[test]
    fn toggle_simulates_like_the_netlist() {
        let netlist = parse_bench(TOGGLE.as_bytes(), "toggle").unwrap();
        let compiled = compile(&netlist).unwrap();
        let system = &compiled.system;
        let en = compiled.input_vars[0];
        let q = compiled.latch_vars[0];
        assert_eq!(compiled.output_vars, vec![("q".to_string(), q)]);
        assert_eq!(compiled.observables(), vec![q]);

        let mut v = system.initial_valuation();
        assert_eq!(v.value(q), Value::Bool(false));
        // Hold en high for two steps: q toggles 0 -> 1 -> 0.
        v.set(en, Value::Bool(true));
        let v1 = system.step(&v, &[(en, Value::Bool(true))]);
        assert_eq!(v1.value(q), Value::Bool(true));
        let v2 = system.step(&v1, &[(en, Value::Bool(false))]);
        assert_eq!(v2.value(q), Value::Bool(false));
        // en low: q holds.
        let v3 = system.step(&v2, &[(en, Value::Bool(false))]);
        assert_eq!(v3.value(q), Value::Bool(false));
    }

    #[test]
    fn gate_driven_outputs_are_registered_one_cycle_late() {
        let text = "\
INPUT(a)
INPUT(b)
OUTPUT(both)
both = AND(a, b)
q = DFF(a)
";
        let netlist = parse_bench(text.as_bytes(), "reg").unwrap();
        let compiled = compile(&netlist).unwrap();
        let system = &compiled.system;
        let (a, b) = (compiled.input_vars[0], compiled.input_vars[1]);
        let both = compiled.output_vars[0].1;
        assert!(!compiled.latch_vars.contains(&both));
        assert_eq!(system.vars().name(both), "both");

        // Registered: reset value is the driver at inputs-low (false), and
        // the observation lags the combinational value by one step.
        let mut v = system.initial_valuation();
        assert_eq!(v.value(both), Value::Bool(false));
        v.set(a, Value::Bool(true));
        v.set(b, Value::Bool(true));
        let v1 = system.step(&v, &[(a, Value::Bool(false)), (b, Value::Bool(false))]);
        assert_eq!(v1.value(both), Value::Bool(true));
        let v2 = system.step(&v1, &[(a, Value::Bool(false)), (b, Value::Bool(false))]);
        assert_eq!(v2.value(both), Value::Bool(false));
    }

    #[test]
    fn stateless_netlists_are_rejected() {
        let netlist = parse_bench(b"INPUT(a)\nOUTPUT(a)\n", "wire").unwrap();
        assert!(matches!(compile(&netlist), Err(CompileError::NoState)));
    }

    #[test]
    fn invalid_ir_is_rejected_not_panicked_on() {
        let mut netlist = parse_bench(TOGGLE.as_bytes(), "toggle").unwrap();
        netlist.gates[0].fanins[0] = crate::netlist::Lit::of(NodeRef::Gate(9));
        assert!(matches!(compile(&netlist), Err(CompileError::Invalid(_))));
    }

    #[test]
    fn registered_output_name_collisions_get_a_suffix() {
        // AIGER can name an output after a latch while driving it with the
        // latch's *negation*, which forces a registered output whose natural
        // name is taken.
        let aag = b"aag 1 0 1 1 0\n2 3\n3\nl0 q\no0 q\n";
        let netlist = crate::aiger::parse_aag(aag, "clash").unwrap();
        let compiled = compile(&netlist).unwrap();
        let (name, var) = &compiled.output_vars[0];
        assert_eq!(name, "q");
        assert_eq!(compiled.system.vars().name(*var), "q_out");
    }
}
