//! Gate-level circuit frontend.
//!
//! This crate opens the hardware corpus to the learner: it parses ASCII
//! AIGER (`.aag`) and ISCAS-85/89 `.bench` netlists into a shared gate-level
//! IR ([`Netlist`]), reduces them to the cone of influence of their observed
//! outputs ([`reduce_to_coi`]), and compiles them into
//! [`amle_system::System`] transition systems ([`compile`]) — latches become
//! state variables, primary inputs become inputs, and next-state cones
//! become update expressions built through the hash-consed
//! [`amle_expr::Expr::canonical`] seam.
//!
//! Both parsers return typed [`ParseError`]s and never panic on malformed
//! input (pinned by the `malformed` test battery); both formats have
//! emitters ([`emit_aag`], [`emit_bench`]) whose compositions with the
//! parsers are the identity on the expressible fragments, which the
//! proptests exercise against the seeded [`random_netlist`] generator.
//! [`FIXTURES`] embeds the small committed circuits the benchmark suite
//! registers behind `suite --circuits`.

#![warn(missing_docs)]

mod aiger;
mod bench_fmt;
mod coi;
mod compile;
mod fixtures;
mod generate;
mod netlist;
#[cfg(test)]
mod proptests;

pub use aiger::{emit_aag, parse_aag, EmitError};
pub use bench_fmt::{emit_bench, parse_bench};
pub use coi::{coi_stats, reduce_to_coi, NetlistStats};
pub use compile::{compile, CompileError, CompiledCircuit};
pub use fixtures::{fixture, Fixture, FixtureFormat, FIXTURES};
pub use generate::{random_netlist, GenFlavor, SplitMix64};
pub use netlist::{Gate, GateOp, Latch, Lit, Netlist, NodeRef, Output, ParseError};
