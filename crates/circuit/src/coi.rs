//! Cone-of-influence reduction.
//!
//! Logic that never feeds an observed output cannot affect the learned
//! model: the active learner's spurious checks and the semantic fingerprint
//! are both phrased over the observables. This pass marks every node
//! transitively reachable from the output drivers — a marked latch pulls in
//! its whole next-state cone, across latch boundaries — and rebuilds the
//! netlist with only the marked gates and latches, preserving their relative
//! order.
//!
//! Primary inputs are **always kept**, even unreferenced ones. Dropping an
//! input would change how many input values the simulator draws per step and
//! thereby shift the deterministic RNG stream, perturbing generated traces;
//! keeping them makes the reduced system's learned `semantic_fingerprint`
//! byte-identical to the full one (asserted by this crate's differential
//! tests).

use crate::netlist::{Netlist, NodeRef};

/// Structural statistics of a netlist relative to its cone of influence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary input count (COI never drops inputs).
    pub inputs: usize,
    /// Latches in the original netlist.
    pub latches_total: usize,
    /// Latches inside the cone of influence of the outputs.
    pub latches_in_coi: usize,
    /// Gates in the original netlist.
    pub gates_total: usize,
    /// Gates inside the cone of influence of the outputs.
    pub gates_in_coi: usize,
    /// Observed outputs.
    pub outputs: usize,
}

impl NetlistStats {
    /// Gates outside the cone (dropped by [`reduce_to_coi`]).
    pub fn gates_dropped(&self) -> usize {
        self.gates_total - self.gates_in_coi
    }

    /// Latches outside the cone (dropped by [`reduce_to_coi`]).
    pub fn latches_dropped(&self) -> usize {
        self.latches_total - self.latches_in_coi
    }
}

/// Marks the cone of influence: `(latch_marks, gate_marks)`.
fn mark(netlist: &Netlist) -> (Vec<bool>, Vec<bool>) {
    let mut latch_marked = vec![false; netlist.latches.len()];
    let mut gate_marked = vec![false; netlist.gates.len()];
    let mut worklist: Vec<NodeRef> = netlist.outputs.iter().map(|o| o.driver.node).collect();
    while let Some(node) = worklist.pop() {
        match node {
            NodeRef::Const | NodeRef::Input(_) => {}
            NodeRef::Latch(i) => {
                if !latch_marked[i] {
                    latch_marked[i] = true;
                    worklist.push(netlist.latches[i].next.node);
                }
            }
            NodeRef::Gate(i) => {
                if !gate_marked[i] {
                    gate_marked[i] = true;
                    worklist.extend(netlist.gates[i].fanins.iter().map(|f| f.node));
                }
            }
        }
    }
    (latch_marked, gate_marked)
}

/// Computes [`NetlistStats`] without rebuilding the netlist.
pub fn coi_stats(netlist: &Netlist) -> NetlistStats {
    let (latch_marked, gate_marked) = mark(netlist);
    NetlistStats {
        inputs: netlist.inputs.len(),
        latches_total: netlist.latches.len(),
        latches_in_coi: latch_marked.iter().filter(|m| **m).count(),
        gates_total: netlist.gates.len(),
        gates_in_coi: gate_marked.iter().filter(|m| **m).count(),
        outputs: netlist.outputs.len(),
    }
}

/// Drops every gate and latch outside the cone of influence of the outputs,
/// returning the reduced netlist and the stats of the original.
///
/// The reduced netlist keeps all primary inputs (see the module docs for
/// why), preserves the relative order of surviving latches and gates, and is
/// idempotent: reducing an already-reduced netlist changes nothing.
pub fn reduce_to_coi(netlist: &Netlist) -> (Netlist, NetlistStats) {
    let (latch_marked, gate_marked) = mark(netlist);
    let stats = NetlistStats {
        inputs: netlist.inputs.len(),
        latches_total: netlist.latches.len(),
        latches_in_coi: latch_marked.iter().filter(|m| **m).count(),
        gates_total: netlist.gates.len(),
        gates_in_coi: gate_marked.iter().filter(|m| **m).count(),
        outputs: netlist.outputs.len(),
    };

    // Survivor index maps, preserving relative order.
    let compact = |marks: &[bool]| -> Vec<Option<usize>> {
        let mut next = 0usize;
        marks
            .iter()
            .map(|m| {
                if *m {
                    next += 1;
                    Some(next - 1)
                } else {
                    None
                }
            })
            .collect()
    };
    let latch_map = compact(&latch_marked);
    let gate_map = compact(&gate_marked);
    let remap = |node: NodeRef| -> NodeRef {
        match node {
            NodeRef::Const | NodeRef::Input(_) => node,
            // Marked nodes only ever reference marked nodes, so the maps
            // are total on everything we rebuild.
            NodeRef::Latch(i) => NodeRef::Latch(latch_map[i].expect("latch in cone")),
            NodeRef::Gate(i) => NodeRef::Gate(gate_map[i].expect("gate in cone")),
        }
    };

    let reduced = Netlist {
        name: netlist.name.clone(),
        inputs: netlist.inputs.clone(),
        latches: netlist
            .latches
            .iter()
            .zip(&latch_marked)
            .filter(|(_, m)| **m)
            .map(|(latch, _)| {
                let mut latch = latch.clone();
                latch.next.node = remap(latch.next.node);
                latch
            })
            .collect(),
        gates: netlist
            .gates
            .iter()
            .zip(&gate_marked)
            .filter(|(_, m)| **m)
            .map(|(gate, _)| {
                let mut gate = gate.clone();
                for fanin in &mut gate.fanins {
                    fanin.node = remap(fanin.node);
                }
                gate
            })
            .collect(),
        outputs: netlist
            .outputs
            .iter()
            .map(|output| {
                let mut output = output.clone();
                output.driver.node = remap(output.driver.node);
                output
            })
            .collect(),
    };
    debug_assert_eq!(reduced.validate(), Ok(()));
    (reduced, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_fmt::parse_bench;

    const REDUCIBLE: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(q)
q = DFF(useful)
useful = AND(a, q)
junk = OR(a, b)
dead = DFF(junk)
junk2 = NOT(dead)
";

    #[test]
    fn drops_logic_outside_the_cone() {
        let full = parse_bench(REDUCIBLE.as_bytes(), "reducible").unwrap();
        let (reduced, stats) = reduce_to_coi(&full);
        assert_eq!(stats.gates_total, 3);
        assert_eq!(stats.gates_in_coi, 1);
        assert_eq!(stats.gates_dropped(), 2);
        assert_eq!(stats.latches_total, 2);
        assert_eq!(stats.latches_in_coi, 1);
        assert_eq!(reduced.gates.len(), 1);
        assert_eq!(reduced.gates[0].name, "useful");
        assert_eq!(reduced.latches.len(), 1);
        assert_eq!(reduced.latches[0].name, "q");
        // Inputs are always kept, referenced or not.
        assert_eq!(reduced.inputs, full.inputs);
        assert_eq!(reduced.validate(), Ok(()));
    }

    #[test]
    fn reduction_is_idempotent() {
        let full = parse_bench(REDUCIBLE.as_bytes(), "reducible").unwrap();
        let (reduced, _) = reduce_to_coi(&full);
        let (again, stats) = reduce_to_coi(&reduced);
        assert_eq!(again, reduced);
        assert_eq!(stats.gates_dropped(), 0);
        assert_eq!(stats.latches_dropped(), 0);
    }

    #[test]
    fn latches_pull_their_next_state_cone() {
        // out observes q1; q1.next = q0; q0.next reads the input through g.
        let text = "\
INPUT(a)
OUTPUT(q1)
q1 = DFF(q0)
q0 = DFF(g)
g = BUFF(a)
";
        let full = parse_bench(text.as_bytes(), "chain").unwrap();
        let (reduced, stats) = reduce_to_coi(&full);
        assert_eq!(stats.latches_in_coi, 2);
        assert_eq!(stats.gates_in_coi, 1);
        assert_eq!(reduced, full);
    }

    #[test]
    fn stats_match_reduce() {
        let full = parse_bench(REDUCIBLE.as_bytes(), "reducible").unwrap();
        let (_, from_reduce) = reduce_to_coi(&full);
        assert_eq!(coi_stats(&full), from_reduce);
    }
}
