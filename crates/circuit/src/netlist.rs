//! The shared gate-level intermediate representation.
//!
//! Both frontends — ASCII AIGER ([`crate::parse_aag`]) and ISCAS `.bench`
//! ([`crate::parse_bench`]) — parse into the same [`Netlist`]: primary
//! inputs, latches with initial values, named gates over a small boolean
//! operator set, and observed outputs. Downstream passes (cone-of-influence
//! reduction, compilation into an [`amle_system::System`]) operate on this
//! IR only, so they are format-agnostic.
//!
//! Nodes are referenced positionally ([`NodeRef`]) and signals are edges
//! ([`Lit`]): a node reference plus an optional negation, which is how AIGER
//! encodes inverters for free. `.bench` netlists never produce negated edges
//! (negation is a `NOT` gate there), but every pass handles both.

use std::error::Error;
use std::fmt;

/// A reference to one node of a [`Netlist`].
///
/// The three index spaces are independent: `Input(0)` is the first primary
/// input, `Latch(0)` the first latch, `Gate(0)` the first gate, each in file
/// order. `Const` is the constant-*false* node (AIGER literal 0); the
/// constant *true* is its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// The constant-false node.
    Const,
    /// A primary input, by position in [`Netlist::inputs`].
    Input(usize),
    /// A latch (current-state value), by position in [`Netlist::latches`].
    Latch(usize),
    /// A gate output, by position in [`Netlist::gates`].
    Gate(usize),
}

/// A signal edge: a node reference with an optional negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// The driving node.
    pub node: NodeRef,
    /// Whether the edge inverts the node's value.
    pub negated: bool,
}

impl Lit {
    /// The constant-false signal.
    pub const FALSE: Lit = Lit {
        node: NodeRef::Const,
        negated: false,
    };
    /// The constant-true signal.
    pub const TRUE: Lit = Lit {
        node: NodeRef::Const,
        negated: true,
    };

    /// A plain (non-negated) edge to `node`.
    pub fn of(node: NodeRef) -> Lit {
        Lit {
            node,
            negated: false,
        }
    }

    /// The negation of this signal.
    pub fn inverted(self) -> Lit {
        Lit {
            node: self.node,
            negated: !self.negated,
        }
    }
}

/// The boolean gate operators of the IR.
///
/// AIGER only produces [`GateOp::And`] (with negated edges standing in for
/// inverters); `.bench` netlists use the whole set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Conjunction of all fanins.
    And,
    /// Disjunction of all fanins.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Exclusive or (exactly two fanins).
    Xor,
    /// Negated exclusive or (exactly two fanins).
    Xnor,
    /// Inverter (exactly one fanin).
    Not,
    /// Buffer (exactly one fanin).
    Buf,
}

impl GateOp {
    /// The `.bench` keyword of the operator.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateOp::And => "AND",
            GateOp::Or => "OR",
            GateOp::Nand => "NAND",
            GateOp::Nor => "NOR",
            GateOp::Xor => "XOR",
            GateOp::Xnor => "XNOR",
            GateOp::Not => "NOT",
            GateOp::Buf => "BUFF",
        }
    }

    /// The fanin arity the operator requires: `(min, max)` inclusive.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateOp::And | GateOp::Or | GateOp::Nand | GateOp::Nor => (1, usize::MAX),
            GateOp::Xor | GateOp::Xnor => (2, 2),
            GateOp::Not | GateOp::Buf => (1, 1),
        }
    }

    /// Evaluates the operator on concrete fanin values.
    pub fn eval(self, fanins: &[bool]) -> bool {
        match self {
            GateOp::And => fanins.iter().all(|b| *b),
            GateOp::Or => fanins.iter().any(|b| *b),
            GateOp::Nand => !fanins.iter().all(|b| *b),
            GateOp::Nor => !fanins.iter().any(|b| *b),
            GateOp::Xor => fanins[0] != fanins[1],
            GateOp::Xnor => fanins[0] == fanins[1],
            GateOp::Not => !fanins[0],
            GateOp::Buf => fanins[0],
        }
    }
}

/// A latch: one bit of sequential state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Latch {
    /// Signal name (from the symbol table or the `.bench` assignment).
    pub name: String,
    /// Reset value.
    pub init: bool,
    /// The next-state function input.
    pub next: Lit,
}

/// A combinational gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Signal name (`.bench` assignment target; synthesized `a{index}` for
    /// AIGER and-gates, which are anonymous in the format).
    pub name: String,
    /// The operator.
    pub op: GateOp,
    /// Fanin edges, in file order.
    pub fanins: Vec<Lit>,
}

/// An observed output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Output name. For `.bench` this is the observed signal's own name;
    /// for AIGER it comes from the symbol table (default `o{index}`).
    pub name: String,
    /// The driving signal.
    pub driver: Lit,
}

/// A gate-level netlist: the shared IR of both circuit frontends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    /// Circuit name (supplied by the caller; neither format stores one).
    pub name: String,
    /// Primary input names, in file order.
    pub inputs: Vec<String>,
    /// Latches, in file order.
    pub latches: Vec<Latch>,
    /// Combinational gates, in file order.
    pub gates: Vec<Gate>,
    /// Observed outputs, in file order.
    pub outputs: Vec<Output>,
}

/// Typed errors of the circuit frontend: everything a parser, the IR
/// validator or the emitters can object to. Parsers must return these —
/// never panic — on arbitrary input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input is not valid UTF-8.
    NotUtf8 {
        /// Byte offset of the first invalid byte.
        offset: usize,
    },
    /// The file ended before a required section was complete.
    Truncated {
        /// What was expected next.
        expected: String,
    },
    /// The AIGER header line is malformed or names an unsupported format.
    BadHeader {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A token that should be a literal/number does not parse.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An AIGER literal exceeds the header's maximum variable index.
    OutOfRangeLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending literal.
        literal: u64,
        /// The largest admissible literal (`2 * max_var + 1`).
        max: u64,
    },
    /// A definition position (input or and-gate left-hand side) must be an
    /// even, non-constant literal.
    ExpectedDefinableLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending literal.
        literal: u64,
    },
    /// A signal was defined twice.
    DuplicateDefinition {
        /// 1-based line number of the second definition.
        line: usize,
        /// The signal (a name, or `variable N` for AIGER).
        signal: String,
    },
    /// A referenced signal was never defined.
    UndefinedSignal {
        /// 1-based line number of the reference.
        line: usize,
        /// The signal (a name, or `literal N` for AIGER).
        signal: String,
    },
    /// An AIGER latch initial value is neither `0` nor `1` (the 1.9
    /// "uninitialized" form is not supported — the compiler needs a concrete
    /// reset value).
    BadLatchInit {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A symbol-table entry is malformed or references a nonexistent
    /// position.
    BadSymbol {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A line does not match the format's grammar.
    BadSyntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// A `.bench` gate uses an operator outside the supported set.
    UnsupportedGate {
        /// 1-based line number.
        line: usize,
        /// The operator keyword.
        op: String,
    },
    /// A gate has the wrong number of fanins for its operator.
    BadArity {
        /// The gate name.
        signal: String,
        /// The operator keyword.
        op: String,
        /// The fanin count found.
        got: usize,
    },
    /// The combinational logic contains a cycle not broken by a latch.
    CombinationalCycle {
        /// Name of a gate on the cycle.
        signal: String,
    },
    /// A node reference points outside the netlist (only possible for
    /// hand-built IR; parsers never produce it).
    DanglingReference {
        /// Where the bad reference sits.
        context: String,
    },
    /// Two distinct signals (inputs, latches or gates) share a name.
    DuplicateName {
        /// The shared name.
        name: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotUtf8 { offset } => {
                write!(
                    f,
                    "input is not UTF-8 (first invalid byte at offset {offset})"
                )
            }
            ParseError::Truncated { expected } => {
                write!(f, "file ends early: expected {expected}")
            }
            ParseError::BadHeader { line, reason } => {
                write!(f, "line {line}: bad header: {reason}")
            }
            ParseError::BadToken { line, token } => {
                write!(f, "line {line}: `{token}` is not a number")
            }
            ParseError::OutOfRangeLiteral { line, literal, max } => {
                write!(
                    f,
                    "line {line}: literal {literal} exceeds the header maximum {max}"
                )
            }
            ParseError::ExpectedDefinableLiteral { line, literal } => write!(
                f,
                "line {line}: literal {literal} cannot be defined (must be even and non-constant)"
            ),
            ParseError::DuplicateDefinition { line, signal } => {
                write!(f, "line {line}: `{signal}` is defined twice")
            }
            ParseError::UndefinedSignal { line, signal } => {
                write!(f, "line {line}: `{signal}` is never defined")
            }
            ParseError::BadLatchInit { line, token } => {
                write!(f, "line {line}: latch init `{token}` is not 0 or 1")
            }
            ParseError::BadSymbol { line, reason } => {
                write!(f, "line {line}: bad symbol entry: {reason}")
            }
            ParseError::BadSyntax { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::UnsupportedGate { line, op } => {
                write!(f, "line {line}: unsupported gate operator `{op}`")
            }
            ParseError::BadArity { signal, op, got } => {
                write!(
                    f,
                    "gate `{signal}`: operator {op} cannot take {got} fanin(s)"
                )
            }
            ParseError::CombinationalCycle { signal } => {
                write!(f, "combinational cycle through gate `{signal}`")
            }
            ParseError::DanglingReference { context } => {
                write!(f, "dangling node reference in {context}")
            }
            ParseError::DuplicateName { name } => {
                write!(f, "two signals share the name `{name}`")
            }
        }
    }
}

impl Error for ParseError {}

impl Netlist {
    /// The display name of a node (`const` for the constant node).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range reference; call [`Netlist::validate`]
    /// first for untrusted IR.
    pub fn node_name(&self, node: NodeRef) -> &str {
        match node {
            NodeRef::Const => "const",
            NodeRef::Input(i) => &self.inputs[i],
            NodeRef::Latch(i) => &self.latches[i].name,
            NodeRef::Gate(i) => &self.gates[i].name,
        }
    }

    /// Checks a node reference against the netlist's index spaces.
    fn in_range(&self, node: NodeRef) -> bool {
        match node {
            NodeRef::Const => true,
            NodeRef::Input(i) => i < self.inputs.len(),
            NodeRef::Latch(i) => i < self.latches.len(),
            NodeRef::Gate(i) => i < self.gates.len(),
        }
    }

    /// Structural validation: every reference in range, gate arities legal,
    /// signal names unique, and the combinational logic acyclic (latches
    /// break cycles; a gate loop is a [`ParseError::CombinationalCycle`]).
    ///
    /// Both parsers validate before returning, so a parsed netlist is always
    /// well-formed; hand-built or generated IR should be validated before
    /// use.
    pub fn validate(&self) -> Result<(), ParseError> {
        for (index, latch) in self.latches.iter().enumerate() {
            if !self.in_range(latch.next.node) {
                return Err(ParseError::DanglingReference {
                    context: format!("latch {index} (`{}`) next-state input", latch.name),
                });
            }
        }
        for (index, gate) in self.gates.iter().enumerate() {
            let (min, max) = gate.op.arity();
            if gate.fanins.len() < min || gate.fanins.len() > max {
                return Err(ParseError::BadArity {
                    signal: gate.name.clone(),
                    op: gate.op.bench_name().to_string(),
                    got: gate.fanins.len(),
                });
            }
            for fanin in &gate.fanins {
                if !self.in_range(fanin.node) {
                    return Err(ParseError::DanglingReference {
                        context: format!("gate {index} (`{}`) fanin", gate.name),
                    });
                }
            }
        }
        for (index, output) in self.outputs.iter().enumerate() {
            if !self.in_range(output.driver.node) {
                return Err(ParseError::DanglingReference {
                    context: format!("output {index} (`{}`) driver", output.name),
                });
            }
        }
        let mut names = std::collections::HashSet::new();
        for name in self
            .inputs
            .iter()
            .chain(self.latches.iter().map(|l| &l.name))
            .chain(self.gates.iter().map(|g| &g.name))
        {
            if !names.insert(name.as_str()) {
                return Err(ParseError::DuplicateName { name: name.clone() });
            }
        }
        let mut output_names = std::collections::HashSet::new();
        for output in &self.outputs {
            if !output_names.insert(output.name.as_str()) {
                return Err(ParseError::DuplicateName {
                    name: output.name.clone(),
                });
            }
        }
        self.gate_topo_order().map(|_| ())
    }

    /// A topological order of the gate indices (fanins before users), or the
    /// offending gate when the combinational logic is cyclic. Latch
    /// boundaries cut the graph: a latch's next-state input is *not* an edge
    /// here, because the latch delays it by one step.
    ///
    /// Iterative (explicit stack), so arbitrarily deep cones cannot overflow
    /// the call stack.
    pub fn gate_topo_order(&self) -> Result<Vec<usize>, ParseError> {
        const WHITE: u8 = 0; // unvisited
        const GREY: u8 = 1; // on the DFS stack
        const BLACK: u8 = 2; // finished
        let mut color = vec![WHITE; self.gates.len()];
        let mut order = Vec::with_capacity(self.gates.len());
        for root in 0..self.gates.len() {
            if color[root] != WHITE {
                continue;
            }
            // Each stack frame is (gate, next fanin position to visit).
            let mut stack = vec![(root, 0usize)];
            color[root] = GREY;
            while let Some((gate, position)) = stack.pop() {
                let fanins = &self.gates[gate].fanins;
                let mut advanced = false;
                for (offset, fanin) in fanins.iter().enumerate().skip(position) {
                    if let NodeRef::Gate(child) = fanin.node {
                        match color[child] {
                            WHITE => {
                                color[child] = GREY;
                                stack.push((gate, offset + 1));
                                stack.push((child, 0));
                                advanced = true;
                                break;
                            }
                            GREY => {
                                return Err(ParseError::CombinationalCycle {
                                    signal: self.gates[child].name.clone(),
                                });
                            }
                            _ => {}
                        }
                    }
                }
                if !advanced {
                    color[gate] = BLACK;
                    order.push(gate);
                }
            }
        }
        Ok(order)
    }

    /// Concretely evaluates a signal with latches at the given values and
    /// all primary inputs at `false` — used to derive reset values for
    /// registered outputs.
    ///
    /// `latch_values` must have one entry per latch.
    ///
    /// # Panics
    ///
    /// Panics on invalid IR; validate first.
    pub fn eval_lit(&self, lit: Lit, latch_values: &[bool]) -> bool {
        assert_eq!(latch_values.len(), self.latches.len());
        let order = self
            .gate_topo_order()
            .expect("eval_lit requires an acyclic netlist");
        let mut gate_values = vec![false; self.gates.len()];
        let value_of = |l: Lit, gate_values: &[bool]| -> bool {
            let raw = match l.node {
                NodeRef::Const => false,
                NodeRef::Input(_) => false,
                NodeRef::Latch(i) => latch_values[i],
                NodeRef::Gate(i) => gate_values[i],
            };
            raw != l.negated
        };
        for gate in order {
            let fanins: Vec<bool> = self.gates[gate]
                .fanins
                .iter()
                .map(|f| value_of(*f, &gate_values))
                .collect();
            gate_values[gate] = self.gates[gate].op.eval(&fanins);
        }
        value_of(lit, &gate_values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        Netlist {
            name: "tiny".to_string(),
            inputs: vec!["a".to_string()],
            latches: vec![Latch {
                name: "q".to_string(),
                init: false,
                next: Lit::of(NodeRef::Gate(0)),
            }],
            gates: vec![Gate {
                name: "g".to_string(),
                op: GateOp::And,
                fanins: vec![
                    Lit::of(NodeRef::Input(0)),
                    Lit::of(NodeRef::Latch(0)).inverted(),
                ],
            }],
            outputs: vec![Output {
                name: "g".to_string(),
                driver: Lit::of(NodeRef::Gate(0)),
            }],
        }
    }

    #[test]
    fn valid_netlist_passes() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let mut n = tiny();
        n.gates[0].fanins[0] = Lit::of(NodeRef::Input(7));
        assert!(matches!(
            n.validate(),
            Err(ParseError::DanglingReference { .. })
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut n = tiny();
        n.inputs.push("q".to_string());
        // Note the dangling check passes: the new input is never referenced.
        assert!(matches!(
            n.validate(),
            Err(ParseError::DuplicateName { .. })
        ));
    }

    #[test]
    fn arity_is_enforced() {
        let mut n = tiny();
        n.gates[0].op = GateOp::Not;
        assert!(matches!(n.validate(), Err(ParseError::BadArity { .. })));
    }

    #[test]
    fn gate_cycles_are_detected_and_latch_cuts_are_respected() {
        let mut n = tiny();
        // g -> g is a combinational cycle.
        n.gates[0].fanins[0] = Lit::of(NodeRef::Gate(0));
        assert!(matches!(
            n.validate(),
            Err(ParseError::CombinationalCycle { .. })
        ));
        // A latch in the loop (q.next = g, g reads q) is fine — that is the
        // `tiny` netlist itself.
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn eval_lit_computes_reset_values() {
        let n = tiny();
        // Inputs are false in eval, so the AND gate is false either way.
        assert!(!n.eval_lit(Lit::of(NodeRef::Gate(0)), &[false]));
        assert!(!n.eval_lit(Lit::of(NodeRef::Gate(0)), &[true]));
        assert!(n.eval_lit(Lit::of(NodeRef::Latch(0)), &[true]));
        assert!(n.eval_lit(Lit::TRUE, &[false]));
        assert!(!n.eval_lit(Lit::FALSE, &[false]));
    }

    #[test]
    fn deep_chains_do_not_overflow_the_stack() {
        // 50k chained buffers: a recursive topo sort would blow the stack.
        let mut gates = vec![Gate {
            name: "g0".to_string(),
            op: GateOp::Buf,
            fanins: vec![Lit::of(NodeRef::Input(0))],
        }];
        for i in 1..50_000 {
            gates.push(Gate {
                name: format!("g{i}"),
                op: GateOp::Buf,
                fanins: vec![Lit::of(NodeRef::Gate(i - 1))],
            });
        }
        let n = Netlist {
            name: "chain".to_string(),
            inputs: vec!["a".to_string()],
            latches: vec![Latch {
                name: "q".to_string(),
                init: false,
                next: Lit::of(NodeRef::Gate(49_999)),
            }],
            gates,
            outputs: vec![Output {
                name: "o".to_string(),
                driver: Lit::of(NodeRef::Latch(0)),
            }],
        };
        assert_eq!(n.validate(), Ok(()));
        assert_eq!(n.gate_topo_order().unwrap().len(), 50_000);
    }
}
