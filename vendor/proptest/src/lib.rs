//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's `proptests.rs` modules
//! rely on: the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` and `boxed`, integer-range and
//! tuple strategies, [`arbitrary::any`], and the [`collection`] combinators.
//!
//! Differences from real proptest:
//!
//! * no shrinking — a failing case is reported with its seed but not
//!   minimised;
//! * generation is driven by a deterministic per-test RNG (seeded from the
//!   test name), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares a block of property tests.
///
/// Supports the subset of real proptest syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0i64..10, flag in any::<bool>()) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_test_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Picks one of the given strategies uniformly per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
///
/// Real proptest rejects and regenerates; this stand-in simply treats the
/// case as vacuously passing, which preserves soundness of the properties.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts two values are distinct inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
