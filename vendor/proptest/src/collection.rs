//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length lies
/// in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times so small
        // element domains cannot loop forever.
        let mut attempts = 0;
        while set.len() < target && attempts < 20 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates `BTreeSet`s whose elements come from `element` and whose size
/// lies in `size` (best-effort for tiny element domains).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let strat = vec(0i64..10, 2..5);
        let mut rng = TestRng::from_test_name("vec-sizes");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn btree_set_respects_bounds() {
        let strat = btree_set(0usize..4, 1..3);
        let mut rng = TestRng::from_test_name("set-sizes");
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 2);
        }
    }
}
