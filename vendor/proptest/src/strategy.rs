//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of a type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of several strategies per case (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit range: one draw covers it.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_test_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn map_and_boxed_compose() {
        let strat = (0i64..10).prop_map(|v| v * 2).boxed();
        let cloned = strat.clone();
        let mut rng = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
            let w = cloned.generate(&mut rng);
            assert!(w % 2 == 0 && w < 20);
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let union = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut rng = rng();
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[(union.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0i64..5, 10i64..15);
        let mut rng = rng();
        let (a, b) = strat.generate(&mut rng);
        assert!((0..5).contains(&a));
        assert!((10..15).contains(&b));
    }
}
