//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::from_test_name("any-bool");
        let strat = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn u8_covers_range_edges_eventually() {
        let mut rng = TestRng::from_test_name("any-u8");
        let strat = any::<u8>();
        let mut hits = std::collections::BTreeSet::new();
        for _ in 0..4096 {
            hits.insert(strat.generate(&mut rng));
        }
        assert!(hits.len() > 200, "poor coverage: {}", hits.len());
    }
}
