//! Test-runner plumbing: configuration, errors and the deterministic RNG.

use std::fmt;

/// Per-test configuration. Only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`], mirroring real proptest's `Reject`
    /// less surface.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash), so every property
    /// has its own reproducible stream.
    pub fn from_test_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_test_name("alpha");
        let mut b = TestRng::from_test_name("alpha");
        let mut c = TestRng::from_test_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        // Overwhelmingly likely to differ between names.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_test_name("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
