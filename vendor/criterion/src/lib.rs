//! Offline stand-in for the `criterion` crate.
//!
//! Provides the entry points the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] and [`Bencher::iter`] — backed by a very
//! small wall-clock harness: each benchmark runs a warm-up iteration followed
//! by `sample_size` timed iterations and prints the mean time. There is no
//! statistical analysis, HTML report or CLI filtering.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness entry object.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (a no-op in this stand-in).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// time.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up iteration, untimed.
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!(
        "bench {id:<48} {:>12.3?} mean over {} iterations",
        mean, bencher.iterations
    );
}

/// Groups benchmark functions under one runner function, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        // One warm-up plus `sample_size` timed iterations.
        assert_eq!(runs, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4);
    }
}
