//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses:
//!
//! * [`Rng::gen_range`] over integer ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic SplitMix64 generator.
//!
//! Determinism is the priority: the same seed always yields the same input
//! sequence, which is what the paper-reproduction experiments rely on. The
//! generator is NOT cryptographically secure and makes no cross-version
//! stability promises beyond this workspace.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut |bound| uniform_u64(self, bound))
    }

    /// Samples a uniformly random boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support for deterministic reproduction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform value in `0..bound` (`bound > 0`) via multiply-shift rejection-free
/// mapping; the bias is below 2^-32 for the small bounds used here.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Integer ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a value using `draw`, which returns a uniform value in
    /// `0..bound` for any `bound > 0`.
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: a single draw already covers it.
                    return draw(u64::MAX) as $t;
                }
                (lo as i128 + draw(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..=1000), b.gen_range(0i64..=1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(0i64..=9)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..=9).contains(&sample(&mut rng)));
    }
}
