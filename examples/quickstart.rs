//! Quickstart: define a small system, run the active-learning loop, and print
//! the learned abstraction plus the invariants that were proven on it.
//!
//! Run with `cargo run --example quickstart`.

use active_model_learning::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the system: a water-tank controller. The pump switches on
    //    below 20% fill and off above 80% fill.
    let mut b = SystemBuilder::new();
    b.name("water_tank");
    let level = b.input_in_range("level", Sort::int(7), 0, 100)?;
    let pump = b.state("pump", Sort::Bool, Value::Bool(false))?;
    let low = b.var(level).lt(&Expr::int_val(20, 7));
    let high = b.var(level).gt(&Expr::int_val(80, 7));
    // Hysteresis: turn on when low, off when high, otherwise keep the mode.
    let next_pump = low.ite(&Expr::true_(), &high.ite(&Expr::false_(), &b.var(pump)));
    b.update(pump, next_pump)?;
    let system = b.build()?;

    // 2. Configure and run the active learner (random initial traces, then
    //    model-checking-driven refinement).
    let config = ActiveLearnerConfig {
        initial_traces: 20,
        trace_length: 20,
        k: 6,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&system, HistoryLearner::default(), config);
    let report = runner.run()?;

    // 3. Inspect the result.
    println!(
        "converged = {}, alpha = {:.2}, iterations = {}, states = {}",
        report.converged,
        report.alpha,
        report.iterations,
        report.num_states()
    );
    println!(
        "\nlearned abstraction (DOT):\n{}",
        report.abstraction.to_dot(system.vars())
    );
    println!("proven invariants:");
    for invariant in &report.invariants {
        println!("  {}", invariant.display(system.vars()));
    }

    // 4. Theorem 1 in action: the abstraction admits fresh random executions.
    let simulator = Simulator::new(&system);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let fresh = simulator.random_trace(40, &mut rng);
    assert!(report.abstraction.accepts_trace(&fresh));
    println!("\na fresh 40-step random execution is admitted by the abstraction");
    Ok(())
}
