//! Reproduces Fig. 2 of the paper: learn the Home Climate-Control Cooler
//! abstraction and print it.
//!
//! Run with `cargo run --example home_climate_control`.

use active_model_learning::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = benchmarks::benchmark_by_name("HomeClimateControlCooler")
        .expect("the benchmark suite includes the cooler");
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 50,
        trace_length: 50,
        k: benchmark.k,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run()?;

    let vars = benchmark.system.vars();
    println!(
        "alpha = {:.2}, d = {:.2}, {} states, {} iterations",
        report.alpha,
        benchmark.score_d(&report.abstraction),
        report.num_states(),
        report.iterations
    );
    println!("\ntransitions (compare with Fig. 2 of the paper):");
    for t in report.abstraction.transitions() {
        println!(
            "  {} --[{}]--> {}",
            t.from,
            active_model_learning::automaton::display_expr(&t.guard, vars),
            t.to
        );
    }
    println!("\nDOT:\n{}", report.abstraction.to_dot(vars));

    // The checking phase runs through the incremental SAT backend; its
    // aggregated statistics surface in the report.
    let solver = report.solver_stats();
    assert!(solver.solve_calls > 0, "no SAT queries were issued");
    println!(
        "solver: {} solve calls, {} decisions, {} propagations, {} conflicts, {:?} in solve",
        solver.solve_calls,
        solver.decisions,
        solver.propagations,
        solver.conflicts,
        solver.solve_time
    );
    Ok(())
}
