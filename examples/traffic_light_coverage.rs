//! Use-case from Section VI of the paper: evaluating test coverage. The
//! learned abstraction (which provably admits all behaviours) is compared
//! against the behaviours exercised by a given test suite; abstraction edges
//! never taken by any test are coverage holes.
//!
//! Run with `cargo run --example traffic_light_coverage`.

use active_model_learning::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = benchmarks::benchmark_by_name("MooreTrafficLight")
        .expect("the benchmark suite includes the traffic light");

    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 40,
        trace_length: 40,
        k: benchmark.k,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run()?;
    let abstraction = &report.abstraction;

    // A deliberately weak test suite: short runs that never let the light
    // complete a full cycle.
    let simulator = Simulator::new(&benchmark.system);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let tests: Vec<Trace> = (0..10)
        .map(|_| simulator.random_trace(3, &mut rng))
        .collect();

    // Coverage: which abstraction transitions are exercised by some test?
    let mut covered = vec![false; abstraction.num_transitions()];
    for test in &tests {
        for (current, next) in test
            .observations()
            .iter()
            .zip(test.observations().iter().skip(1))
        {
            let _ = current;
            for (i, t) in abstraction.transitions().iter().enumerate() {
                if t.guard.eval_bool(next) {
                    covered[i] = true;
                }
            }
        }
    }
    let holes: Vec<usize> = covered
        .iter()
        .enumerate()
        .filter(|(_, c)| !**c)
        .map(|(i, _)| i)
        .collect();

    println!(
        "abstraction: {} states, {} transitions (alpha = {:.2})",
        abstraction.num_states(),
        abstraction.num_transitions(),
        report.alpha
    );
    println!(
        "test suite of {} short runs covers {}/{} abstraction transitions",
        tests.len(),
        covered.iter().filter(|c| **c).count(),
        covered.len()
    );
    let vars = benchmark.system.vars();
    for i in holes.iter().take(5) {
        let t = &abstraction.transitions()[*i];
        println!(
            "  coverage hole: {} --[{}]--> {}",
            t.from,
            active_model_learning::automaton::display_expr(&t.guard, vars),
            t.to
        );
    }
    Ok(())
}
