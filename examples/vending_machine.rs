//! Reverse-engineers the Mealy vending machine benchmark and compares the
//! active algorithm against the random-sampling baseline on it — a single-row
//! preview of the Table I comparison.
//!
//! Run with `cargo run --example vending_machine`.

use active_model_learning::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = benchmarks::benchmark_by_name("MealyVendingMachine")
        .expect("the benchmark suite includes the vending machine");

    // Active learning.
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 30,
        trace_length: 20,
        k: benchmark.k,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run()?;

    // Random-sampling baseline with a modest budget.
    let mut passive = HistoryLearner::default();
    let baseline = random_sampling_baseline(
        &benchmark.system,
        &mut passive,
        &benchmark.observables,
        1_000,
        20,
        benchmark.k,
        7,
    )?;

    println!("MealyVendingMachine");
    println!(
        "  active:  alpha = {:.2}, d = {:.2}, states = {}, iterations = {}",
        report.alpha,
        benchmark.score_d(&report.abstraction),
        report.num_states(),
        report.iterations
    );
    println!(
        "  random:  alpha = {:.2}, d = {:.2}, states = {}",
        baseline.alpha,
        benchmark.score_d(&baseline.model),
        baseline.num_states()
    );
    Ok(())
}
