//! Use-case from Section VI of the paper: the conditions extracted from the
//! final abstraction are invariants of the implementation and can serve as
//! additional specifications. This example mines them for the frame
//! synchroniser benchmark and then demonstrates that a mutated ("buggy")
//! implementation violates one of them.
//!
//! Run with `cargo run --example invariant_mining`.

use active_model_learning::checker::KInductionChecker;
use active_model_learning::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = benchmarks::benchmark_by_name("FrameSyncController")
        .expect("the benchmark suite includes the frame synchroniser");

    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 40,
        trace_length: 30,
        k: benchmark.k,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run()?;
    let vars = benchmark.system.vars();

    println!(
        "learned abstraction: alpha = {:.2}, {} invariants extracted",
        report.alpha,
        report.invariants.len()
    );
    for invariant in report.invariants.iter().take(5) {
        println!("  {}", invariant.display(vars));
    }

    // Re-check the mined invariants against a second implementation: here we
    // simply re-use the same system (they must all hold), which is the
    // "verify multiple implementations" workflow of Section VI.
    let mut checker = KInductionChecker::new(&benchmark.system);
    let holding = report
        .invariants
        .iter()
        .filter(|inv| {
            checker
                .check_condition(&inv.assumption, &[], &inv.conclusion)
                .is_valid()
        })
        .count();
    println!(
        "\nre-checking against the implementation: {}/{} invariants hold",
        holding,
        report.invariants.len()
    );
    Ok(())
}
