//! Integration test for §IV-B3: across refinement iterations the learned
//! model keeps admitting the growing trace set, and the counterexample traces
//! added in iteration j are admitted by the model of iteration j+1.

use active_model_learning::prelude::*;

#[test]
fn counterexample_traces_are_absorbed_by_the_next_iteration() {
    // CountEvents needs refinement: short random traces rarely reach the
    // counter limit, so the saturation behaviour arrives via counterexamples.
    let benchmark = benchmarks::benchmark_by_name("CountEvents").expect("known benchmark");
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 6,
        trace_length: 5,
        k: benchmark.k,
        max_iterations: 40,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run().expect("run");
    assert!(report.converged, "α = {}", report.alpha);

    // The language grows monotonically in practice: the per-iteration α never
    // drops by more than the noise introduced by re-mined letters, and the
    // final model has at least as many transitions as the first.
    let stats = &report.iteration_stats;
    assert!(!stats.is_empty());
    assert!(stats.last().unwrap().model_transitions >= stats.first().unwrap().model_transitions);
    // Refinement actually happened (at least one new trace was spliced in).
    let refined: usize = stats.iter().map(|s| s.new_traces).sum();
    assert!(
        refined > 0,
        "expected at least one counterexample-driven refinement"
    );
    // α of the final iteration is 1.
    assert_eq!(stats.last().unwrap().alpha, 1.0);
}

#[test]
fn alpha_never_decreases_once_the_model_is_complete() {
    let benchmark =
        benchmarks::benchmark_by_name("HomeClimateControlCooler").expect("known benchmark");
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 25,
        trace_length: 25,
        k: benchmark.k,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run().expect("run");
    assert!(report.converged);
    let final_alpha = report.iteration_stats.last().unwrap().alpha;
    assert_eq!(final_alpha, 1.0);
    assert_eq!(report.alpha, final_alpha);
}
