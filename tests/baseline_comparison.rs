//! Integration test for the Section IV-C comparison: the random-sampling
//! baseline misses behaviours on "needle" benchmarks while the active
//! algorithm finds them, and the active algorithm's α is never worse.

use active_model_learning::prelude::*;

#[test]
fn active_alpha_dominates_random_sampling_on_counter_benchmarks() {
    for name in ["CountEvents", "SuperstepWithSuperStep"] {
        let benchmark = benchmarks::benchmark_by_name(name).expect("known benchmark");

        // A deliberately small random budget of short traces: the counter
        // limit is rarely reached.
        let mut passive = HistoryLearner::default();
        let baseline = random_sampling_baseline(
            &benchmark.system,
            &mut passive,
            &benchmark.observables,
            60,
            4,
            benchmark.k,
            11,
        )
        .expect("baseline");

        let config = ActiveLearnerConfig {
            observables: Some(benchmark.observables.clone()),
            initial_traces: 10,
            trace_length: 4,
            k: benchmark.k,
            max_iterations: 40,
            ..ActiveLearnerConfig::default()
        };
        let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
        let report = runner.run().expect("active run");

        assert!(report.converged, "{name}: active α = {}", report.alpha);
        assert!(
            baseline.alpha <= report.alpha + 1e-9,
            "{name}: baseline α {} exceeds active α {}",
            baseline.alpha,
            report.alpha
        );
    }
}

#[test]
fn a_generous_random_budget_can_match_the_active_result_on_simple_systems() {
    // The flip side reported in Table I: for simple systems random sampling
    // with a large budget also reaches α = 1 — the advantage of the active
    // loop is the guarantee, not always the number.
    let benchmark =
        benchmarks::benchmark_by_name("HomeClimateControlCooler").expect("known benchmark");
    let mut passive = HistoryLearner::default();
    let baseline = random_sampling_baseline(
        &benchmark.system,
        &mut passive,
        &benchmark.observables,
        5_000,
        50,
        benchmark.k,
        23,
    )
    .expect("baseline");
    assert!(baseline.alpha >= 0.9, "α = {}", baseline.alpha);
}
