//! Cross-crate integration tests: the full pipeline (simulate → learn →
//! extract conditions → model-check → refine) on benchmark systems.

use active_model_learning::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(
    benchmark_name: &str,
    initial_traces: usize,
    trace_length: usize,
) -> (RunReport, benchmarks::Benchmark) {
    let benchmark = benchmarks::benchmark_by_name(benchmark_name).expect("known benchmark");
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces,
        trace_length,
        k: benchmark.k,
        max_iterations: 30,
        ..ActiveLearnerConfig::default()
    };
    let mut runner = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let report = runner.run().expect("active learning run");
    (report, benchmark)
}

#[test]
fn cooler_pipeline_reaches_alpha_one_and_d_one() {
    let (report, benchmark) = run("HomeClimateControlCooler", 20, 20);
    assert!(report.converged);
    assert_eq!(report.alpha, 1.0);
    assert_eq!(benchmark.score_d(&report.abstraction), 1.0);
}

#[test]
fn vending_machine_pipeline_reaches_alpha_one() {
    let (report, benchmark) = run("MealyVendingMachine", 20, 15);
    assert!(report.converged, "α = {}", report.alpha);
    assert!(benchmark.score_d(&report.abstraction) >= 0.75);
}

#[test]
fn ladder_scheduler_pipeline_reaches_alpha_one() {
    let (report, benchmark) = run("LadderLogicScheduler", 15, 10);
    assert!(report.converged, "α = {}", report.alpha);
    assert_eq!(benchmark.score_d(&report.abstraction), 1.0);
}

#[test]
fn converged_abstractions_admit_fresh_traces() {
    // Theorem 1 across several benchmark families.
    for name in [
        "HomeClimateControlCooler",
        "SequenceRecognition",
        "CdPlayerModeManager",
    ] {
        let (report, benchmark) = run(name, 20, 15);
        assert!(report.converged, "{name}: α = {}", report.alpha);
        let simulator = Simulator::new(&benchmark.system);
        let mut rng = StdRng::seed_from_u64(0xDEAD);
        for _ in 0..10 {
            let fresh = simulator.random_trace(30, &mut rng);
            assert!(
                report.abstraction.accepts_trace(&fresh),
                "{name}: fresh trace rejected"
            );
        }
    }
}

#[test]
fn invariants_of_a_converged_run_hold_on_the_implementation() {
    use active_model_learning::checker::KInductionChecker;
    let (report, benchmark) = run("HomeClimateControlCooler", 20, 20);
    assert!(report.converged);
    let mut checker = KInductionChecker::new(&benchmark.system);
    for invariant in &report.invariants {
        // Spurious states were already blocked during the run, so a plain
        // re-check may need the same blocking; converged runs of this
        // benchmark need none.
        assert!(checker
            .check_condition(&invariant.assumption, &[], &invariant.conclusion)
            .is_valid());
    }
}

#[test]
fn learner_choice_is_pluggable_end_to_end() {
    let benchmark = benchmarks::benchmark_by_name("LadderLogicScheduler").expect("known benchmark");
    let config = ActiveLearnerConfig {
        observables: Some(benchmark.observables.clone()),
        initial_traces: 10,
        trace_length: 8,
        k: benchmark.k,
        max_iterations: 20,
        ..ActiveLearnerConfig::default()
    };
    let mut with_ktails =
        ActiveLearner::new(&benchmark.system, KTailsLearner::new(1), config.clone());
    let ktails_report = with_ktails.run().expect("k-tails run");
    assert!(ktails_report.alpha > 0.0);

    let mut with_history = ActiveLearner::new(&benchmark.system, HistoryLearner::default(), config);
    let history_report = with_history.run().expect("history run");
    assert!(history_report.alpha >= ktails_report.alpha - 1e-9 || history_report.converged);
}
